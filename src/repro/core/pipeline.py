"""Read-mapping pipelines: scalar, batched and sharded execution.

:class:`ReadMappingPipeline` runs a matcher over a batch of reads and
collects per-read match locations plus aggregate cost statistics —
the read-mapping loop of Fig. 4(a) (sequencing machine -> memory ->
global buffer -> arrays) at the algorithmic level.  System-level
latency/energy with H-tree and buffer overheads lives in
:mod:`repro.arch.accelerator`; this pipeline charges array-level costs
only, which is what the per-read diagnostics need.

**Execution models.**  Three progressively faster paths:

* :meth:`ReadMappingPipeline.run` — the original per-read Python loop
  (one :meth:`~repro.core.matcher.AsmCapMatcher.match` per read),
  drawing from the matcher's legacy *sequential* noise stream;
* :meth:`ReadMappingPipeline.run_batched` — one
  :meth:`~repro.core.matcher.AsmCapMatcher.match_batch` over the whole
  block, vectorising the ED*, HDAC and TASR passes on *keyed* noise
  streams.  Bit-identical to a scalar loop that passes
  ``query_key=index`` — but not to plain :meth:`run`, whose
  sequential draws depend on call order;
* :class:`ShardedReadMappingPipeline` — the software model of
  Fig. 4(a)'s full system: the reference is partitioned across several
  CAM-array *shards* (the contiguous bank assignment of
  :func:`repro.arch.scheduler.bank_row_ranges`), the global buffer
  broadcasts every read chunk to all shards, and shards search
  concurrently — on an in-process thread pool (``engine="thread"``)
  or on long-lived spawned worker processes attached to shared-memory
  references (``engine="process"``, :mod:`repro.parallel`); the two
  engines make bit-identical decisions and reports.  Matched rows come
  back in global coordinates; per-read energy sums over shards while
  latency takes the maximum — shards operate in parallel, exactly
  like the banks behind the H-tree — so its cost totals are *not*
  comparable to a single-array run.

Within each keyed path, determinism is anchored on per-read *query
keys* (the read's global position in the workload): variation noise
and HDAC draws are keyed by ``(query_key, pass)``, so the scalar
wrapper :meth:`ShardedReadMappingPipeline.map_read` and the chunked,
multi-threaded :meth:`ShardedReadMappingPipeline.run` make
bit-identical decisions under a fixed seed.  The ``first_read_index``
offset on both ``run`` methods extends the same anchor to incremental
execution — :mod:`repro.service` streams a workload through these
engines micro-batch by micro-batch, bit-identical to one call over
the whole block.
"""

from __future__ import annotations

import os
from concurrent.futures import ThreadPoolExecutor
from concurrent.futures import wait as futures_wait
from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from repro.arch.autotune import plan_shards, resolve_engine
from repro.arch.scheduler import bank_row_ranges
from repro.cam.array import CamArray, StoredReference, as_segments_matrix
from repro.cost.events import BufferBroadcast
from repro.cost.ledger import CostLedger
from repro.cost.views import (
    SearchStats,
    fold_ledger_observability,
    merge_search_stats,
    search_stats,
)
from repro.core.matcher import (
    AsmCapMatcher,
    MatchBatchOutcome,
    MatchOutcome,
    MatcherConfig,
)
from repro.errors import CamConfigError, LedgerCompactionError
from repro.genome import alphabet
from repro.genome.edits import ErrorModel
from repro.genome.reads import ReadRecord
from repro.knobs import validate_service_knobs
from repro.parallel import LedgerSummary, ProcessShardEngine, ShardTask

#: Reads handed to one worker task at a time; bounds the per-pass
#: blocks a shard materialises while streaming a workload.
DEFAULT_READ_CHUNK = 2048


@dataclass(frozen=True)
class ReadMapping:
    """One read's mapping result."""

    read_index: int
    matched_rows: tuple[int, ...]
    outcome: MatchOutcome

    @property
    def is_mapped(self) -> bool:
        return bool(self.matched_rows)

    @property
    def is_unique(self) -> bool:
        return len(self.matched_rows) == 1


@dataclass
class MappingReport:
    """Aggregate statistics for one pipeline run.

    A thin view: per-read costs come from the match outcomes, whose
    energies/latencies are derived from the cost-ledger events
    (:mod:`repro.cost`); the report only sums them in read order.
    """

    n_reads: int = 0
    n_mapped: int = 0
    n_unique: int = 0
    n_searches: int = 0
    total_energy_joules: float = 0.0
    total_latency_ns: float = 0.0
    mappings: list[ReadMapping] = field(default_factory=list)

    @property
    def mapped_fraction(self) -> float:
        return self.n_mapped / self.n_reads if self.n_reads else 0.0

    @property
    def unique_fraction(self) -> float:
        return self.n_unique / self.n_reads if self.n_reads else 0.0

    @property
    def mean_energy_per_read_joules(self) -> float:
        return (self.total_energy_joules / self.n_reads
                if self.n_reads else 0.0)

    @property
    def mean_latency_per_read_ns(self) -> float:
        return (self.total_latency_ns / self.n_reads
                if self.n_reads else 0.0)

    @property
    def reads_per_second(self) -> float:
        """Sequential-throughput estimate from the summed latency."""
        if self.total_latency_ns == 0.0:
            return 0.0
        return self.n_reads / (self.total_latency_ns * 1e-9)

    def add(self, mapping: ReadMapping) -> None:
        """Fold one read's mapping into the aggregates."""
        self.mappings.append(mapping)
        self.n_reads += 1
        self.n_mapped += int(mapping.is_mapped)
        self.n_unique += int(mapping.is_unique)
        self.n_searches += mapping.outcome.n_searches
        self.total_energy_joules += mapping.outcome.energy_joules
        self.total_latency_ns += mapping.outcome.latency_ns

    def snapshot(self) -> "MappingReport":
        """A defensive copy: same aggregates, a fresh mappings list.

        What a long-lived service hands out to callers — mutating the
        snapshot (e.g. ``report.mappings.clear()``) cannot corrupt the
        live aggregates it was taken from.  The per-read
        :class:`ReadMapping` entries are frozen, so sharing them is
        safe.
        """
        return MappingReport(
            n_reads=self.n_reads, n_mapped=self.n_mapped,
            n_unique=self.n_unique, n_searches=self.n_searches,
            total_energy_joules=self.total_energy_joules,
            total_latency_ns=self.total_latency_ns,
            mappings=list(self.mappings),
        )


def _is_stored_shards(segments) -> bool:
    """Whether *segments* is a sequence of pre-encoded shard references."""
    if isinstance(segments, StoredReference):
        raise CamConfigError(
            "pass shard references as a sequence (one StoredReference "
            "per shard), not a bare StoredReference"
        )
    return (isinstance(segments, (list, tuple))
            and len(segments) > 0
            and all(isinstance(item, StoredReference) for item in segments))


def _read_codes(read: "np.ndarray | ReadRecord") -> np.ndarray:
    return read.read.codes if isinstance(read, ReadRecord) else np.asarray(read)


def _codes_matrix(reads: "Sequence[np.ndarray] | Sequence[ReadRecord]",
                  ) -> np.ndarray:
    """Stack a read sequence into a ``(B, N)`` uint8 matrix."""
    rows = [np.asarray(_read_codes(read), dtype=np.uint8) for read in reads]
    if not rows:
        return np.zeros((0, 0), dtype=np.uint8)
    widths = {row.shape for row in rows}
    if len(widths) != 1 or rows[0].ndim != 1:
        raise CamConfigError(
            f"reads must share one 1-D shape, got {sorted(widths)}"
        )
    return np.stack(rows)


class ReadMappingPipeline:
    """Batch read mapping over one matcher."""

    def __init__(self, matcher: AsmCapMatcher):
        self._matcher = matcher

    @property
    def matcher(self) -> AsmCapMatcher:
        return self._matcher

    @property
    def backend(self) -> str:
        """Kernel backend name of the underlying array."""
        return self._matcher.array.backend

    @property
    def ledger(self) -> CostLedger:
        """The underlying array's cost ledger (every pass this
        pipeline issued is recorded there as a typed event)."""
        return self._matcher.array.ledger

    def map_read(self, read: "np.ndarray | ReadRecord",
                 threshold: int, index: int = 0) -> ReadMapping:
        """Map a single read; returns its matched row indices."""
        outcome = self._matcher.match(_read_codes(read), threshold)
        matched_rows = tuple(int(i) for i in np.flatnonzero(outcome.decisions))
        return ReadMapping(read_index=index, matched_rows=matched_rows,
                           outcome=outcome)

    def run(self, reads: "Sequence[np.ndarray] | Sequence[ReadRecord]",
            threshold: int) -> MappingReport:
        """Map every read and aggregate the statistics.

        An empty batch is a valid degenerate input for a streaming
        caller and yields an empty report.
        """
        report = MappingReport()
        for index, read in enumerate(reads):
            report.add(self.map_read(read, threshold, index=index))
        return report

    def run_batched(self,
                    reads: "Sequence[np.ndarray] | Sequence[ReadRecord]",
                    threshold: int,
                    first_read_index: int = 0) -> MappingReport:
        """Map the whole batch through the vectorised matcher passes.

        Decisions are bit-identical to a scalar loop that calls
        ``matcher.match(read, threshold, query_key=index)`` per read —
        the keyed noise streams make execution order irrelevant.

        ``first_read_index`` offsets the query keys (and the reported
        ``read_index`` values): read ``i`` of this call is keyed as
        global read ``first_read_index + i``.  A streaming caller that
        feeds a workload in micro-batches with the right offsets is
        therefore bit-identical to one ``run_batched`` call over the
        whole workload, for any micro-batch boundaries (the streaming
        service's determinism contract — :mod:`repro.service`).
        """
        codes = _codes_matrix(reads)
        if codes.shape[0] == 0:
            return MappingReport()
        first = int(first_read_index)
        keys = list(range(first, first + codes.shape[0]))
        outcome = self._matcher.match_batch(codes, threshold,
                                            query_keys=keys)
        return _build_report(
            decisions=outcome.decisions,
            thresholds=outcome.thresholds,
            n_searches=outcome.n_searches,
            energy=outcome.energy_joules,
            latency=outcome.latency_ns,
            hdac_probabilities=outcome.hdac_probabilities,
            tasr_lower_bound=outcome.tasr_lower_bound,
            read_indices=keys,
        )


def _build_report(decisions: np.ndarray, thresholds: np.ndarray,
                  n_searches: np.ndarray, energy: np.ndarray,
                  latency: np.ndarray, hdac_probabilities: np.ndarray,
                  tasr_lower_bound: int,
                  read_indices: "list[int]") -> MappingReport:
    """Assemble a :class:`MappingReport` from per-query batch arrays."""
    n_queries = decisions.shape[0]
    # One global nonzero pass instead of B per-row scans, and plain
    # python lists so the hot loop never touches numpy scalars.
    hit_query, hit_row = np.nonzero(decisions)
    boundaries = np.searchsorted(hit_query, np.arange(1, n_queries))
    rows_per_read = np.split(hit_row, boundaries)
    thresholds_l = thresholds.tolist()
    n_searches_l = n_searches.tolist()
    energy_l = np.asarray(energy, dtype=float).tolist()
    latency_l = np.asarray(latency, dtype=float).tolist()
    hdac_l = hdac_probabilities.tolist()
    report = MappingReport()
    for q in range(n_queries):
        per_read = MatchOutcome(
            decisions=decisions[q],
            threshold=thresholds_l[q],
            n_searches=n_searches_l[q],
            energy_joules=energy_l[q],
            latency_ns=latency_l[q],
            hdac_probability=hdac_l[q],
            tasr_lower_bound=tasr_lower_bound,
        )
        report.add(ReadMapping(
            read_index=read_indices[q],
            matched_rows=tuple(rows_per_read[q].tolist()),
            outcome=per_read,
        ))
    return report


def _concat_outcomes(
        chunks: "list[MatchBatchOutcome]") -> MatchBatchOutcome:
    """Concatenate one shard's per-chunk outcomes in chunk order.

    The single reassembly both engines use: the thread engine's
    per-shard worker produces the chunk list in-process, the process
    engine collects it from worker tasks — either way the arrays are
    stitched back identically, chunk boundaries leaving no trace.
    """
    if len(chunks) == 1:
        return chunks[0]
    return MatchBatchOutcome(
        decisions=np.concatenate([c.decisions for c in chunks]),
        thresholds=np.concatenate([c.thresholds for c in chunks]),
        n_searches=np.concatenate([c.n_searches for c in chunks]),
        energy_joules=np.concatenate([c.energy_joules for c in chunks]),
        latency_ns=np.concatenate([c.latency_ns for c in chunks]),
        hdac_probabilities=np.concatenate(
            [c.hdac_probabilities for c in chunks]
        ),
        tasr_lower_bound=chunks[0].tasr_lower_bound,
        hdac_mask=np.concatenate([c.hdac_mask for c in chunks]),
        tasr_mask=np.concatenate([c.tasr_mask for c in chunks]),
    )


def resolve_shard_plan(n_rows: int, cols: int,
                       n_shards: "int | None",
                       chunk_size: "int | None"
                       ) -> tuple[int, int]:
    """Resolve the ``(n_shards, chunk_size)`` knobs exactly once.

    The single definition of how ``None`` knobs autotune
    (:func:`repro.arch.autotune.plan_shards`) — shared by
    :class:`ShardedReadMappingPipeline` and the multi-session frontend
    (:mod:`repro.service.frontend`), so a frontend session and a
    standalone pipeline built from the same knobs can never resolve
    differently (the bit-identity contract depends on it).
    """
    if n_shards is None or chunk_size is None:
        plan = plan_shards(n_rows, max(1, cols))
        if n_shards is None:
            n_shards = plan.n_shards
        if chunk_size is None:
            chunk_size = plan.chunk_size
    if chunk_size <= 0:
        raise CamConfigError(
            f"chunk_size must be positive, got {chunk_size}"
        )
    return int(n_shards), int(chunk_size)


def encode_shard_references(segments: np.ndarray,
                            n_shards: "int | None" = None,
                            chunk_size: "int | None" = None,
                            ) -> tuple[tuple[StoredReference, ...], int]:
    """Partition *segments* into sealed per-shard stored references.

    Applies the accelerator's contiguous bank assignment
    (:func:`repro.arch.scheduler.bank_row_ranges`) with the knobs
    resolved by :func:`resolve_shard_plan`, and encodes each shard's
    rows exactly once (:meth:`StoredReference.encode`).  Returns
    ``(shards, chunk_size)``; feeding the shards back into
    ``ShardedReadMappingPipeline(shards, ...)`` builds a pipeline
    bit-identical to one constructed from the raw segment matrix with
    the same knobs and seeds — without re-encoding per pipeline.
    """
    segments = as_segments_matrix(segments)
    n_shards, chunk_size = resolve_shard_plan(
        segments.shape[0], segments.shape[1], n_shards, chunk_size
    )
    shards = tuple(
        StoredReference.encode(segments[start:stop])
        for start, stop in bank_row_ranges(segments.shape[0], n_shards)
    )
    return shards, chunk_size


class ShardedReadMappingPipeline:
    """Read mapping over a reference partitioned across array shards.

    The software model of Fig. 4(a)'s system view: the reference's
    segment rows are assigned to ``n_shards`` CAM arrays using the
    accelerator's contiguous bank assignment
    (:func:`repro.arch.scheduler.bank_row_ranges`), every read is
    broadcast to all shards (the global buffer + H-tree), and shards
    search concurrently.  Matched row indices are reported in global
    (whole-reference) coordinates.

    Cost semantics: per-read energy *sums* over shards (every bank
    spends its search energy) while per-read latency takes the *max*
    (banks search in parallel behind the H-tree).

    The shard fan-out runs on one **persistent** worker pool, created
    lazily on the first :meth:`run` and reused across calls — a
    streaming service dispatches thousands of micro-batches, and the
    old build-and-tear-down-per-call executor dominated small-batch
    latency.  :meth:`close` (or the context-manager protocol) releases
    the pool; a later :meth:`run` simply re-creates it.  Call sites
    that construct many pipelines and keep them referenced should
    close each one; a pipeline that is simply dropped releases its
    pool when garbage-collected (the executor's workers hold only a
    weak reference to it).

    Parameters
    ----------
    segments:
        ``(n_rows, N)`` uint8 matrix of reference segments — **or** a
        sequence of sealed, shard-ordered
        :class:`~repro.cam.array.StoredReference` objects (e.g. from
        :func:`encode_shard_references`), in which case the expensive
        per-shard store/encode work is *shared*, not repeated: each
        shard matcher borrows its reference and owns only per-pipeline
        seed/noise/ledger state.
    error_model:
        Workload error rates driving the HDAC/TASR policies.
    n_shards:
        Number of array shards to partition the rows across; shards
        that would receive no rows are dropped.  ``None`` autotunes
        the shard count from the reference size and the machine's CPU
        count (:func:`repro.arch.autotune.plan_shards`).  With
        pre-encoded shard references the count is fixed by the
        sequence; pass ``None`` (or the matching count).
    config:
        Strategy configuration shared by every shard's matcher.
    domain / noisy / seed:
        Array configuration; shard ``s`` derives its seed as
        ``seed + s`` so shards draw independent (but reproducible)
        noise streams.
    max_workers:
        Worker threads for the shard fan-out (default: the autotuned
        plan's worker count — one per shard, capped at the machine's
        CPU count; extra threads on a small host only add contention).
        Explicit values must be positive —
        :class:`~repro.errors.CamConfigError` otherwise (``0`` is a
        configuration mistake, not a request for autotuning).
    chunk_size:
        Reads per worker task; bounds peak memory of the vectorised
        comparison blocks.  ``None`` autotunes it from the per-shard
        row count and segment width.
    ledger_compaction:
        ``None`` (default) keeps every ledger append-only; an integer
        bound opts every shard array's ledger *and* the system-level
        traffic ledger into bounded-memory compaction
        (:class:`repro.cost.ledger.CostLedger`).  With compaction on,
        read whole-system statistics through :meth:`merged_stats` —
        :meth:`merged_ledger` needs the full event streams.
    backend:
        Kernel backend for every shard array's mismatch-count
        primitives (``None`` = the standard selection order; see
        :mod:`repro.kernels`).  Bit-identical across backends, so the
        knob only changes speed, never decisions or reports.  The
        process engine ships the knob to its workers **by name** (each
        worker re-resolves it in its own process), so with
        ``engine="process"`` it must be a registry name string, never
        a backend instance.
    engine:
        Shard fan-out execution engine: ``"thread"`` runs every shard
        on the persistent in-process pool, ``"process"`` fans out to
        long-lived spawned worker processes over shared-memory
        references (:mod:`repro.parallel`).  ``None`` resolves through
        the standard order — ``REPRO_EXECUTION_ENGINE`` environment
        variable, then :func:`repro.arch.autotune.plan_engine`.  The
        engines are bit-identical in decisions, per-read costs and
        reports for any worker count; only wall-clock changes.
    executor:
        An externally-owned executor to run the shard fan-out on
        instead of a private pool — the multi-session frontend shares
        one across every session's pipeline.  :meth:`close` leaves an
        injected executor running (its owner closes it).
    process_engine:
        An externally-owned :class:`~repro.parallel.ProcessShardEngine`
        to run the process fan-out on instead of a private one — the
        multi-session frontend shares one worker pool (and one set of
        shared segments) across sessions.  Requires a resolved
        ``engine`` of ``"process"`` and a shard count matching this
        pipeline; :meth:`close` leaves an injected engine running.
    """

    def __init__(self,
                 segments: "np.ndarray | Sequence[StoredReference]",
                 error_model: ErrorModel,
                 n_shards: "int | None" = 4,
                 config: "MatcherConfig | None" = None,
                 domain: str = "charge",
                 noisy: bool = True,
                 seed: int = 0,
                 max_workers: "int | None" = None,
                 chunk_size: "int | None" = DEFAULT_READ_CHUNK,
                 ledger_compaction: "int | None" = None,
                 backend: "str | None" = None,
                 engine: "str | None" = None,
                 executor: "ThreadPoolExecutor | None" = None,
                 process_engine: "ProcessShardEngine | None" = None):
        validate_service_knobs(compaction=ledger_compaction,
                               max_workers=max_workers, backend=backend,
                               engine=engine)
        self._matchers: list[AsmCapMatcher] = []
        self._stored_shards: "tuple[StoredReference, ...] | None" = None
        if _is_stored_shards(segments):
            shards = tuple(segments)
            if n_shards is not None and n_shards != len(shards):
                raise CamConfigError(
                    f"n_shards={n_shards} conflicts with the "
                    f"{len(shards)} pre-encoded shard references"
                )
            widths = {shard.cols for shard in shards}
            if len(widths) != 1:
                raise CamConfigError(
                    f"shard references must share one width, got "
                    f"{sorted(widths)}"
                )
            self._cols = shards[0].cols
            n_rows = sum(shard.n_segments for shard in shards)
            _, chunk_size = resolve_shard_plan(
                n_rows, self._cols, len(shards), chunk_size
            )
            self._engine_kind = resolve_engine(
                engine, n_rows, self._cols, n_shards=len(shards)
            )
            self._stored_shards = shards
            ranges, start = [], 0
            for shard_index, shard in enumerate(shards):
                ranges.append((start, start + shard.n_segments))
                start += shard.n_segments
                self._matchers.append(AsmCapMatcher.over_stored(
                    shard, error_model, config, domain=domain,
                    noisy=noisy, seed=seed + shard_index,
                    ledger_compaction=ledger_compaction,
                    backend=backend,
                ))
            self._ranges = tuple(ranges)
        else:
            segments = as_segments_matrix(segments)
            n_shards, chunk_size = resolve_shard_plan(
                segments.shape[0], segments.shape[1], n_shards, chunk_size
            )
            self._ranges = bank_row_ranges(segments.shape[0], n_shards)
            self._cols = int(segments.shape[1])
            self._engine_kind = resolve_engine(
                engine, int(segments.shape[0]), self._cols,
                n_shards=len(self._ranges),
            )
            if self._engine_kind == "process":
                # The process engine shares sealed references, so the
                # raw matrix is encoded shard by shard exactly once
                # here; the parent-side matchers borrow the same
                # references (bit-identical to the CamArray path —
                # see StoredReference.encode).
                self._stored_shards = tuple(
                    StoredReference.encode(segments[start:stop])
                    for start, stop in self._ranges
                )
                for shard_index, shard in enumerate(self._stored_shards):
                    self._matchers.append(AsmCapMatcher.over_stored(
                        shard, error_model, config, domain=domain,
                        noisy=noisy, seed=seed + shard_index,
                        ledger_compaction=ledger_compaction,
                        backend=backend,
                    ))
            else:
                for shard, (start, stop) in enumerate(self._ranges):
                    array = CamArray(rows=stop - start, cols=self._cols,
                                     domain=domain, noisy=noisy,
                                     seed=seed + shard,
                                     ledger_compaction=ledger_compaction,
                                     backend=backend)
                    array.store(segments[start:stop])
                    self._matchers.append(
                        AsmCapMatcher(array, error_model, config,
                                      seed=seed + shard)
                    )
        if self._engine_kind == "process" and backend is not None \
                and not isinstance(backend, str):
            raise CamConfigError(
                "the process engine resolves kernel backends by name "
                "inside each worker; pass a registry name string, not "
                f"a backend instance ({backend!r})"
            )
        if process_engine is not None:
            if self._engine_kind != "process":
                raise CamConfigError(
                    f"process_engine was injected but the resolved "
                    f"execution engine is {self._engine_kind!r}"
                )
            if process_engine.n_shards != len(self._matchers):
                raise CamConfigError(
                    f"the injected process engine serves "
                    f"{process_engine.n_shards} shards; this pipeline "
                    f"has {len(self._matchers)}"
                )
        self._chunk_size = int(chunk_size)
        if max_workers is None:
            self._max_workers = max(
                1, min(len(self._matchers), os.cpu_count() or 1)
            )
        else:
            self._max_workers = int(max_workers)
        self._external_executor = executor
        self._pool: "ThreadPoolExecutor | None" = None
        self._external_engine = process_engine
        self._owned_engine: "ProcessShardEngine | None" = None
        # Task-construction state for the process fan-out: tasks are
        # self-contained (seed/config/model/backend travel with each
        # one), which is what lets sessions with different settings
        # share one engine.
        self._model = error_model
        self._config = config
        self._domain = domain
        self._noisy = bool(noisy)
        self._seed = int(seed)
        self._task_backend: "str | None" = backend \
            if isinstance(backend, str) else None
        #: Per-shard worker-side ledger summaries, in chunk order —
        #: the process engine's bounded-memory stand-in for the shard
        #: ledgers the thread engine accumulates in-process.
        self._summaries: "list[list[LedgerSummary]]" = [
            [] for _ in self._matchers
        ]
        #: System-level traffic events (global-buffer broadcasts); the
        #: per-shard search passes live in each shard array's ledger.
        self._ledger = CostLedger(compaction=ledger_compaction)

    @property
    def n_shards(self) -> int:
        return len(self._matchers)

    @property
    def max_workers(self) -> int:
        """Worker-thread budget of the shard fan-out."""
        return self._max_workers

    @property
    def backend(self) -> str:
        """Kernel backend name shared by every shard array."""
        return self._matchers[0].array.backend

    @property
    def engine(self) -> str:
        """Resolved shard fan-out engine (``"thread"`` or ``"process"``)."""
        return self._engine_kind

    @property
    def ledger(self) -> CostLedger:
        """This pipeline's system-level traffic events."""
        return self._ledger

    # -- executor lifecycle -------------------------------------------------

    def _executor(self) -> ThreadPoolExecutor:
        """The persistent fan-out pool (injected, or lazily created).

        One pool serves every :meth:`run` call — a streaming service
        dispatches thousands of micro-batches, and per-call executor
        construction (the pre-fix behaviour) pays thread start-up and
        tear-down on each one.
        """
        if self._external_executor is not None:
            return self._external_executor
        if self._pool is None:
            self._pool = ThreadPoolExecutor(
                max_workers=self._max_workers,
                thread_name_prefix="asmcap-shard",
            )
        return self._pool

    @property
    def owns_executor(self) -> bool:
        """True when the fan-out pool is pipeline-private (not injected)."""
        return self._external_executor is None

    def _process_pool(self) -> ProcessShardEngine:
        """The persistent process engine (injected, or lazily built).

        The private engine shares every shard reference and spawns its
        workers on first use — the same lazy shape as the thread pool,
        so merely constructing a process pipeline costs no processes.
        """
        if self._external_engine is not None:
            return self._external_engine
        if self._owned_engine is None:
            self._owned_engine = ProcessShardEngine(
                self._stored_shards, domain=self._domain,
                noisy=self._noisy, n_workers=self._max_workers,
            )
        return self._owned_engine

    @property
    def owns_process_engine(self) -> bool:
        """True when the process engine is pipeline-private (not injected)."""
        return self._external_engine is None

    def process_engine(self) -> "ProcessShardEngine | None":
        """The live process engine, if any (``None`` before the lazy
        start of a private one, and always on the thread engine)."""
        if self._external_engine is not None:
            return self._external_engine
        return self._owned_engine

    def close(self) -> None:
        """Release the private fan-out resources (idempotent).

        Shuts down the private thread pool and/or the private process
        engine (joining its workers and unlinking their shared-memory
        segments).  Injected executors/engines are left untouched —
        their owner closes them.  The pipeline stays usable: a later
        :meth:`run` re-creates the private pool or engine.
        """
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None
        if self._owned_engine is not None:
            self._owned_engine.close()
            self._owned_engine = None

    def __enter__(self) -> "ShardedReadMappingPipeline":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    def merged_ledger(self) -> CostLedger:
        """One deterministic ledger over the whole sharded system.

        Broadcast events first, then every shard array's passes in
        shard order — independent of worker scheduling, so ledger
        views over a sharded run are reproducible.

        Needs the full event streams: with ``ledger_compaction`` on,
        the shard checkpoints cannot be spliced mid-stream (the merge
        raises :class:`~repro.errors.LedgerCompactionError`) — read
        whole-system statistics through :meth:`merged_stats` instead.
        The process engine folds worker-side events at the process
        boundary (only summaries cross it), so it raises too.
        """
        if self._engine_kind == "process":
            raise LedgerCompactionError(
                "the process engine folds worker-side ledger events at "
                "the process boundary; read whole-system statistics "
                "through merged_stats() or ledger_observability()"
            )
        return CostLedger.merged(
            self._ledger,
            *(matcher.array.ledger for matcher in self._matchers),
        )

    def merged_stats(self) -> SearchStats:
        """Whole-system search counters, exact under compaction.

        Each shard ledger is folded by its own
        :func:`~repro.cost.views.search_stats` (checkpoints restore
        the folded prefix exactly), and the per-shard folds are summed
        in deterministic shard order — so a compacted run reads
        counters bit-identical to the same run without compaction.
        Note the combination order differs from
        ``search_stats(merged_ledger())``'s single interleaved fold,
        so the two agree to float precision, not bit-for-bit.

        On the process engine each worker folds its task's ledger
        before returning (:class:`~repro.parallel.LedgerSummary`), and
        the folds are summed here in deterministic shard-major task
        order.  Integer counters are exact against the thread engine;
        the float totals group additions per task rather than per
        event, so they agree to float precision, not bit-for-bit (the
        per-read energies/latencies in the report stay bit-identical —
        they never cross a fold).
        """
        if self._engine_kind == "process":
            return merge_search_stats(
                summary.stats
                for shard in self._summaries
                for summary in shard
            )
        return merge_search_stats(
            search_stats(matcher.array.ledger)
            for matcher in self._matchers
        )

    def ledger_observability(
            self) -> "tuple[dict[str, int], int, int, int, int]":
        """Bounded-memory evidence over the whole sharded system.

        ``(pass_counts, events_live, events_folded,
        population_elements, compactions)`` — the same fold
        :func:`repro.cost.views.fold_ledger_observability` defines for
        in-process ledgers.  On the thread engine it runs over the
        broadcast ledger plus every shard ledger; on the process
        engine the shard events were folded worker-side, so each
        task's :class:`~repro.parallel.LedgerSummary` contributes its
        pass counts and folded-event total (counted as one compaction
        — the fold at the process boundary).
        """
        if self._engine_kind == "process":
            pass_counts, live, folded, population, compactions = \
                fold_ledger_observability((self._ledger,))
            for shard in self._summaries:
                for summary in shard:
                    for name, count in summary.pass_counts.items():
                        pass_counts[name] = \
                            pass_counts.get(name, 0) + count
                    folded += summary.n_events
                    compactions += 1
            return pass_counts, live, folded, population, compactions
        return fold_ledger_observability(
            (self._ledger,
             *(matcher.array.ledger for matcher in self._matchers))
        )

    @property
    def shard_ranges(self) -> tuple[tuple[int, int], ...]:
        """Global ``(start, stop)`` row range held by each shard."""
        return self._ranges

    @property
    def matchers(self) -> tuple[AsmCapMatcher, ...]:
        """Per-shard matchers (shard order)."""
        return tuple(self._matchers)

    def map_read(self, read: "np.ndarray | ReadRecord",
                 threshold: int, index: int = 0) -> ReadMapping:
        """Map one read — a thin batch-of-one wrapper.

        Bit-identical to the read's row in a :meth:`run` over any
        workload that places it at global position *index*.
        """
        codes = np.asarray(_read_codes(read), dtype=np.uint8)[None, :]
        report = self._run_keyed(codes, threshold, keys=[index])
        return report.mappings[0]

    def run(self, reads: "Sequence[np.ndarray] | Sequence[ReadRecord]",
            threshold: int,
            first_read_index: int = 0) -> MappingReport:
        """Map every read across all shards and merge the reports.

        ``first_read_index`` offsets the determinism keys exactly as
        in :meth:`ReadMappingPipeline.run_batched`: a streamed
        sequence of calls whose offsets tile the workload is
        bit-identical to one call over the whole workload.
        """
        codes = _codes_matrix(reads)
        if codes.shape[0] == 0:
            return MappingReport()
        first = int(first_read_index)
        return self._run_keyed(codes, threshold,
                               keys=list(range(first,
                                               first + codes.shape[0])))

    # -- internals ----------------------------------------------------------

    def _run_keyed(self, codes: np.ndarray, threshold: int,
                   keys: "list[int]") -> MappingReport:
        """Search *codes* on every shard concurrently and merge."""
        if codes.shape[1] != self._cols:
            raise CamConfigError(
                f"read width {codes.shape[1]} does not fit shard width "
                f"{self._cols}"
            )
        # The global buffer broadcasts each chunk to every shard once
        # (Fig. 4(a)'s H-tree); record the traffic before the fan-out.
        read_bits = self._cols * alphabet.BITS_PER_BASE
        for start in range(0, codes.shape[0], self._chunk_size):
            stop = min(start + self._chunk_size, codes.shape[0])
            self._ledger.record(BufferBroadcast(
                n_reads=stop - start, read_bits=read_bits,
            ))
        if self._engine_kind == "process":
            return self._run_process(codes, threshold, keys)
        pool = self._executor()
        futures = [
            pool.submit(self._match_shard, matcher, codes, threshold,
                        keys)
            for matcher in self._matchers
        ]
        try:
            shard_outcomes = [future.result() for future in futures]
        except BaseException:
            # The per-call executor used to guarantee every shard task
            # had finished before an error propagated; the persistent
            # pool must give the same guarantee, or sibling tasks keep
            # writing into our matchers' ledgers while the caller
            # handles (or retries after) the failure.
            for future in futures:
                future.cancel()
            futures_wait(futures)
            raise
        return self._merge(shard_outcomes, keys)

    def _run_process(self, codes: np.ndarray, threshold: int,
                     keys: "list[int]") -> MappingReport:
        """The process fan-out: self-contained tasks, deterministic merge.

        Tasks are cut at exactly the thread engine's chunk boundaries
        and enumerated chunk-major (every shard of chunk 0, then of
        chunk 1, ...), so the earliest work reaches idle workers
        first.  :meth:`~repro.parallel.ProcessShardEngine.run_tasks`
        returns results in task order regardless of scheduling, and
        the per-shard chunk concatenation plus :meth:`_merge` below
        are the very same code the thread engine runs — which is the
        mechanical half of the bit-identity contract (the keyed noise
        streams are the other half).
        """
        engine = self._process_pool()
        n_shards = len(self._matchers)
        tasks = []
        for start in range(0, codes.shape[0], self._chunk_size):
            stop = start + self._chunk_size
            chunk = np.ascontiguousarray(codes[start:stop])
            chunk_keys = tuple(int(key) for key in keys[start:stop])
            for shard_index in range(n_shards):
                tasks.append(ShardTask(
                    shard_index=shard_index, codes=chunk,
                    keys=chunk_keys, threshold=int(threshold),
                    seed=self._seed, config=self._config,
                    error_model=self._model,
                    backend=self._task_backend,
                ))
        results = engine.run_tasks(tasks)
        per_shard: "list[list[MatchBatchOutcome]]" = [
            [] for _ in range(n_shards)
        ]
        for index, (outcome, summary) in enumerate(results):
            shard_index = index % n_shards
            per_shard[shard_index].append(outcome)
            self._summaries[shard_index].append(summary)
        return self._merge(
            [_concat_outcomes(chunks) for chunks in per_shard], keys
        )

    def _match_shard(self, matcher: AsmCapMatcher, codes: np.ndarray,
                     threshold: int,
                     keys: "list[int]") -> MatchBatchOutcome:
        """One shard's matches for the whole workload, chunk by chunk."""
        chunks = []
        for start in range(0, codes.shape[0], self._chunk_size):
            stop = start + self._chunk_size
            chunks.append(matcher.match_batch(
                codes[start:stop], threshold, query_keys=keys[start:stop]
            ))
        return _concat_outcomes(chunks)

    def _merge(self, shard_outcomes: "list[MatchBatchOutcome]",
               keys: "list[int]") -> MappingReport:
        """Merge per-shard outcomes into one global report.

        Row decisions concatenate in shard (= global row) order;
        energy sums over shards while latency takes the shard maximum
        (banks search in parallel behind the H-tree).
        """
        first = shard_outcomes[0]
        decisions = np.hstack([o.decisions for o in shard_outcomes])
        n_searches = np.sum([o.n_searches for o in shard_outcomes], axis=0)
        energy = np.sum([o.energy_joules for o in shard_outcomes], axis=0)
        latency = np.max([o.latency_ns for o in shard_outcomes], axis=0)
        return _build_report(
            decisions=decisions,
            thresholds=first.thresholds,
            n_searches=n_searches,
            energy=energy,
            latency=latency,
            hdac_probabilities=first.hdac_probabilities,
            tasr_lower_bound=first.tasr_lower_bound,
            read_indices=keys,
        )
