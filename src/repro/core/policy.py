"""Design-rule policies for HDAC and TASR (Section IV).

Two small closed-form policies steer the correction strategies:

* **HDAC selection probability** ``p = f(es, eid, T)``:

      p = es / (es + eid) * exp(-(alpha * eid + beta * T))

  - ``es/(es+eid)`` grows with the substitution share of edits (HDAC
    only helps substitution-dominant errors);
  - ``exp(-alpha*eid)`` suppresses HDAC rapidly as indels appear
    (Hamming distance explodes under indels, so trusting it would
    create false negatives);
  - ``exp(-beta*T)`` suppresses HDAC at large thresholds, where many
    indel-inflated Hamming distances should still be matches.

  The paper notes this f() is "only an example" of a suitable shape;
  alpha = 200 and beta = 0.5 are its chosen constants.

* **TASR trigger bound** ``Tl = ceil(gamma / eid * m)``: rotation is
  allowed only when ``T >= Tl``.  High indel rates push ``Tl`` down
  (rotation needed for accuracy); low indel rates push it up (skip the
  rotations, save time and energy, and avoid the false positives SR
  causes at small T).  gamma = 2e-4 in the paper.

Both functions are pure and cheap, matching the paper's observation
that ``p`` can be pre-processed off-line.
"""

from __future__ import annotations

import math

from repro import constants
from repro.errors import ThresholdError
from repro.genome.edits import ErrorModel


def hdac_probability(substitution_rate: float, indel_rate: float,
                     threshold: int,
                     alpha: float = constants.HDAC_ALPHA,
                     beta: float = constants.HDAC_BETA) -> float:
    """The HDAC Hamming-selection probability ``p``.

    Returns 0 when no errors are modelled (``es + eid == 0``): with no
    expected edits there is nothing for HDAC to correct.
    """
    if substitution_rate < 0.0 or indel_rate < 0.0:
        raise ThresholdError("error rates must be non-negative")
    if threshold < 0:
        raise ThresholdError(f"threshold must be non-negative, got {threshold}")
    total = substitution_rate + indel_rate
    if total == 0.0:
        return 0.0
    share = substitution_rate / total
    return share * math.exp(-(alpha * indel_rate + beta * threshold))


def hdac_probability_for_model(model: ErrorModel, threshold: int,
                               alpha: float = constants.HDAC_ALPHA,
                               beta: float = constants.HDAC_BETA) -> float:
    """``p`` computed from an :class:`ErrorModel`'s rates."""
    return hdac_probability(model.substitution, model.indel_rate,
                            threshold, alpha=alpha, beta=beta)


def hdac_enabled(p: float,
                 disable_threshold: float = constants.HDAC_DISABLE_THRESHOLD
                 ) -> bool:
    """Whether the HDAC extra search cycle is worth issuing.

    The paper disables HDAC when ``p`` falls below ~1 % to save the
    extra Hamming search cycle (Section IV-A overhead analysis).
    """
    return p >= disable_threshold


def tasr_lower_bound(indel_rate: float, read_length: int,
                     gamma: float = constants.TASR_GAMMA) -> int:
    """The TASR trigger bound ``Tl = ceil(gamma / eid * m)``.

    With no indels modelled the bound is effectively infinite (rotation
    can only create false positives then); we return ``read_length + 1``
    which no threshold can reach.
    """
    if read_length <= 0:
        raise ThresholdError(
            f"read_length must be positive, got {read_length}"
        )
    if indel_rate < 0.0:
        raise ThresholdError("indel_rate must be non-negative")
    if indel_rate == 0.0:
        return read_length + 1
    bound = math.ceil(gamma / indel_rate * read_length)
    return max(1, min(bound, read_length + 1))


def tasr_lower_bound_for_model(model: ErrorModel, read_length: int,
                               gamma: float = constants.TASR_GAMMA) -> int:
    """``Tl`` computed from an :class:`ErrorModel`'s indel rate."""
    return tasr_lower_bound(model.indel_rate, read_length, gamma=gamma)


def tasr_enabled(threshold: int, lower_bound: int) -> bool:
    """Whether rotations fire at this threshold (``T >= Tl``)."""
    return threshold >= lower_bound
