"""Hamming-Distance Aid Correction — Algorithm 1 (Section IV-A).

**The misjudgment.** When edits are substitution-dominant, the ED*
neighbour comparisons *hide* real edits: a substituted base often still
matches a neighbour by chance, so ED* underestimates the true distance
and EDAM produces false positives whenever ``ED* <= T < ED``.

**The correction.** Search twice — once in ED* mode, once in HD mode
(one extra cycle; the array's mode MUX makes this free in area) — and,
when the two decisions disagree, trust the Hamming decision with
probability ``p`` (:func:`repro.core.policy.hdac_probability`).

The correction is applied independently per row (each row's SA produced
its own pair of decisions), with one uniform draw per disagreeing row,
exactly as Algorithm 1 generates ``X ~ U(0, 1)`` per matching result.

Two draw sources are supported: :func:`hdac_correct` consumes a
sequential :class:`numpy.random.Generator` (the legacy scalar path),
while :func:`hdac_correct_keyed` / :func:`hdac_correct_batch` draw the
``i``-th disagreeing row's uniform from a counter-based keyed stream
(:mod:`repro.cam.keyed_noise`), which makes scalar and batched
executions bit-identical regardless of ordering.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.cam.keyed_noise import uniforms
from repro.errors import ThresholdError


@dataclass(frozen=True)
class HdacOutcome:
    """Result of applying Algorithm 1 to one search's row decisions.

    Attributes
    ----------
    decisions:
        Final per-row match decisions.
    n_disagreements:
        Rows where the HD and ED* decisions differed.
    n_hd_selected:
        Disagreeing rows where the Hamming decision won the draw.
    """

    decisions: np.ndarray
    n_disagreements: int
    n_hd_selected: int


def hdac_correct(ed_star_decisions: np.ndarray,
                 hamming_decisions: np.ndarray,
                 p: float,
                 rng: np.random.Generator) -> HdacOutcome:
    """Apply Algorithm 1 to paired per-row decisions.

    Parameters
    ----------
    ed_star_decisions:
        Boolean per-row ED* match decisions (``O_ED*``).
    hamming_decisions:
        Boolean per-row HD match decisions (``O_HD``).
    p:
        Probability of selecting the Hamming decision on disagreement.
    rng:
        Random generator for the per-row uniform draws.
    """
    ed_star_decisions = np.asarray(ed_star_decisions, dtype=bool)
    hamming_decisions = np.asarray(hamming_decisions, dtype=bool)
    if ed_star_decisions.shape != hamming_decisions.shape:
        raise ThresholdError(
            f"decision shapes differ: {ed_star_decisions.shape} vs "
            f"{hamming_decisions.shape}"
        )
    if not 0.0 <= p <= 1.0:
        raise ThresholdError(f"p must be a probability, got {p}")

    disagree = ed_star_decisions != hamming_decisions
    n_disagreements = int(disagree.sum())
    decisions = ed_star_decisions.copy()
    n_hd_selected = 0
    if n_disagreements and p > 0.0:
        draws = rng.random(n_disagreements) < p
        n_hd_selected = int(draws.sum())
        selected = np.zeros_like(disagree)
        selected[np.flatnonzero(disagree)[draws]] = True
        decisions[selected] = hamming_decisions[selected]
    return HdacOutcome(decisions=decisions,
                       n_disagreements=n_disagreements,
                       n_hd_selected=n_hd_selected)


def _keyed_selection(ed: np.ndarray, hd: np.ndarray,
                     p: np.ndarray, states: np.ndarray) -> np.ndarray:
    """Rows where the keyed draw picks the Hamming decision.

    ``ed``/``hd`` are ``(..., M)`` decision blocks, ``p`` and
    ``states`` broadcast against the leading axes.  The ``i``-th
    disagreeing row of a query consumes counter ``i`` of that query's
    stream — the same association a scalar pass over one query makes,
    which is what keeps scalar and batched corrections bit-identical.
    """
    disagree = ed != hd
    # Ordinal of each disagreeing row within its query (garbage at
    # agreeing rows, masked out below; the uint64 wrap at -1 is fine).
    ordinal = np.cumsum(disagree, axis=-1, dtype=np.uint64) - np.uint64(1)
    draws = uniforms(states, ordinal)
    return disagree & (draws < p)


def hdac_correct_keyed(ed_star_decisions: np.ndarray,
                       hamming_decisions: np.ndarray,
                       p: float, state: int) -> HdacOutcome:
    """Apply Algorithm 1 with draws from one keyed stream.

    Bit-identical to the matching row of :func:`hdac_correct_batch`.
    """
    ed = np.asarray(ed_star_decisions, dtype=bool)
    hd = np.asarray(hamming_decisions, dtype=bool)
    if ed.shape != hd.shape:
        raise ThresholdError(
            f"decision shapes differ: {ed.shape} vs {hd.shape}"
        )
    if not 0.0 <= p <= 1.0:
        raise ThresholdError(f"p must be a probability, got {p}")
    selected = _keyed_selection(ed, hd, np.float64(p),
                                np.uint64(int(state)))
    decisions = np.where(selected, hd, ed)
    return HdacOutcome(decisions=decisions,
                       n_disagreements=int((ed != hd).sum()),
                       n_hd_selected=int(selected.sum()))


def hdac_correct_sweep(ed_star_decisions: np.ndarray,
                       hamming_decisions: np.ndarray,
                       p: np.ndarray,
                       states: np.ndarray) -> np.ndarray:
    """Vectorised Algorithm 1 over a ``(T, B, M)`` threshold sweep.

    Every threshold of a sweep re-runs the correction on the *same*
    per-query keyed streams — exactly what a scalar per-threshold loop
    does, since the stream key is ``(seed, query)`` and never includes
    the threshold.  The draw a row receives still depends on its
    disagreement ordinal, which varies with the threshold's decision
    pattern, so slices are corrected independently.

    Parameters
    ----------
    ed_star_decisions / hamming_decisions:
        ``(T, B, M)`` boolean decision blocks.
    p:
        ``(T,)`` per-threshold Hamming-selection probabilities.
    states:
        ``(B,)`` folded keyed-stream states (uint64), one per query.

    Returns
    -------
    The corrected ``(T, B, M)`` decisions; slice ``t`` is bit-identical
    to ``hdac_correct_batch(ed[t], hd[t], full(B, p[t]), states)``.
    """
    ed = np.asarray(ed_star_decisions, dtype=bool)
    hd = np.asarray(hamming_decisions, dtype=bool)
    if ed.shape != hd.shape or ed.ndim != 3:
        raise ThresholdError(
            f"sweep decision blocks must share one (T, B, M) shape, got "
            f"{ed.shape} vs {hd.shape}"
        )
    p = np.asarray(p, dtype=float)
    if p.shape != (ed.shape[0],):
        raise ThresholdError(
            f"p must be per-threshold with shape ({ed.shape[0]},), got "
            f"{p.shape}"
        )
    if ((p < 0.0) | (p > 1.0)).any():
        raise ThresholdError("p entries must be probabilities in [0, 1]")
    states = np.asarray(states, dtype=np.uint64)
    if states.shape != (ed.shape[1],):
        raise ThresholdError(
            f"states must be per-query with shape ({ed.shape[1]},), got "
            f"{states.shape}"
        )
    selected = _keyed_selection(ed, hd, p[:, None, None],
                                states[None, :, None])
    return np.where(selected, hd, ed)


def hdac_correct_batch(ed_star_decisions: np.ndarray,
                       hamming_decisions: np.ndarray,
                       p: np.ndarray,
                       states: np.ndarray) -> np.ndarray:
    """Vectorised Algorithm 1 over a ``(B, M)`` decision block.

    Parameters
    ----------
    ed_star_decisions / hamming_decisions:
        ``(B, M)`` boolean decision blocks.
    p:
        ``(B,)`` per-query Hamming-selection probabilities.
    states:
        ``(B,)`` folded keyed-stream states (uint64), one per query.

    Returns
    -------
    The corrected ``(B, M)`` decisions; row ``q`` is bit-identical to
    ``hdac_correct_keyed(ed[q], hd[q], p[q], states[q])``.
    """
    ed = np.asarray(ed_star_decisions, dtype=bool)
    hd = np.asarray(hamming_decisions, dtype=bool)
    if ed.shape != hd.shape:
        raise ThresholdError(
            f"decision shapes differ: {ed.shape} vs {hd.shape}"
        )
    p = np.asarray(p, dtype=float)
    if ((p < 0.0) | (p > 1.0)).any():
        raise ThresholdError("p entries must be probabilities in [0, 1]")
    states = np.asarray(states, dtype=np.uint64)
    selected = _keyed_selection(ed, hd, p[:, None], states[:, None])
    return np.where(selected, hd, ed)
