"""The assembled ASMCap matcher: ED* base search + HDAC + TASR.

:class:`AsmCapMatcher` drives one :class:`~repro.cam.array.CamArray`
through the full decision flow of Sections III-IV:

1. issue the ED* search (``S = 1``);
2. if HDAC is enabled and ``p`` is worth the extra cycle, issue the HD
   search (``S = 0``) and apply Algorithm 1;
3. if TASR is enabled and ``T >= Tl``, issue the rotated ED* searches
   through the shift registers and OR them in (Algorithm 2).

Every analog effect (variation noise, sense-amp behaviour) lives inside
the array; the matcher only sequences searches and combines their
decisions, mirroring the controller's role in Fig. 4(a).  All energy
and latency of the extra searches is accounted in the outcome.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro import constants
from repro.cam.array import CamArray
from repro.cam.cell import MatchMode
from repro.core import policy
from repro.core.hdac import HdacOutcome, hdac_correct
from repro.core.tasr import TasrOutcome, tasr_correct
from repro.errors import CamConfigError
from repro.genome.edits import ErrorModel


@dataclass(frozen=True)
class MatcherConfig:
    """Strategy configuration for :class:`AsmCapMatcher`.

    Defaults are the paper's evaluated setting: both strategies on,
    alpha = 200, beta = 0.5, NR = 2, gamma = 2e-4.
    """

    enable_hdac: bool = True
    enable_tasr: bool = True
    hdac_alpha: float = constants.HDAC_ALPHA
    hdac_beta: float = constants.HDAC_BETA
    hdac_disable_threshold: float = constants.HDAC_DISABLE_THRESHOLD
    tasr_nr: int = constants.TASR_NR
    tasr_gamma: float = constants.TASR_GAMMA
    tasr_direction: str = "both"

    @classmethod
    def plain(cls) -> "MatcherConfig":
        """ASMCap without HDAC and TASR ('w/o H. and T.' in Fig. 7/8)."""
        return cls(enable_hdac=False, enable_tasr=False)


@dataclass(frozen=True)
class MatchOutcome:
    """Decisions and cost accounting for matching one read.

    Attributes
    ----------
    decisions:
        Final per-row boolean match decisions.
    threshold:
        The threshold ``T`` used.
    n_searches:
        Total search operations issued (base + HD + rotations).
    energy_joules / latency_ns:
        Summed over all issued searches (plus rotation cycles are
        folded into the rotated searches' latency by the array model).
    hdac_probability:
        The ``p`` used this call (0 when HDAC was skipped).
    tasr_lower_bound:
        The ``Tl`` in force.
    hdac / tasr:
        Detailed strategy outcomes (None when the strategy was off or
        did not trigger).
    """

    decisions: np.ndarray
    threshold: int
    n_searches: int
    energy_joules: float
    latency_ns: float
    hdac_probability: float
    tasr_lower_bound: int
    hdac: "HdacOutcome | None" = None
    tasr: "TasrOutcome | None" = None


class AsmCapMatcher:
    """Full ASMCap matching flow over one CAM array.

    Parameters
    ----------
    array:
        The (charge-domain) CAM array holding reference segments.
    error_model:
        The workload's error rates — HDAC's ``p`` and TASR's ``Tl`` are
        functions of these (the paper pre-processes them off-line).
    config:
        Strategy configuration.
    seed:
        Seed for HDAC's uniform draws.
    """

    def __init__(self, array: CamArray, error_model: ErrorModel,
                 config: "MatcherConfig | None" = None, seed: int = 0):
        self._array = array
        self._model = error_model
        self._config = config or MatcherConfig()
        self._rng = np.random.default_rng(seed)
        if self._config.tasr_direction not in ("both", "left", "right"):
            raise CamConfigError(
                f"invalid tasr_direction {self._config.tasr_direction!r}"
            )

    @property
    def array(self) -> CamArray:
        return self._array

    @property
    def config(self) -> MatcherConfig:
        return self._config

    @property
    def error_model(self) -> ErrorModel:
        return self._model

    def hdac_probability(self, threshold: int) -> float:
        """The off-line pre-processed ``p`` for this workload."""
        return policy.hdac_probability_for_model(
            self._model, threshold,
            alpha=self._config.hdac_alpha, beta=self._config.hdac_beta,
        )

    def tasr_lower_bound(self) -> int:
        """The off-line pre-processed ``Tl`` for this workload."""
        return policy.tasr_lower_bound_for_model(
            self._model, self._array.cols, gamma=self._config.tasr_gamma,
        )

    def match(self, read: np.ndarray, threshold: int) -> MatchOutcome:
        """Match one read against all stored rows at threshold ``T``."""
        read = np.asarray(read, dtype=np.uint8)
        base = self._array.search(read, threshold, MatchMode.ED_STAR)
        decisions = base.matches.copy()
        n_searches = 1
        energy = base.energy_joules
        latency = base.latency_ns

        # --- HDAC (Algorithm 1) -----------------------------------------
        hdac_outcome: HdacOutcome | None = None
        p = 0.0
        if self._config.enable_hdac:
            p_raw = self.hdac_probability(threshold)
            if policy.hdac_enabled(p_raw, self._config.hdac_disable_threshold):
                p = p_raw
                hd = self._array.search(read, threshold, MatchMode.HAMMING)
                n_searches += 1
                energy += hd.energy_joules
                latency += hd.latency_ns
                hdac_outcome = hdac_correct(decisions, hd.matches, p, self._rng)
                decisions = hdac_outcome.decisions

        # --- TASR (Algorithm 2) -------------------------------------------
        tasr_outcome: TasrOutcome | None = None
        lower_bound = self.tasr_lower_bound()
        if self._config.enable_tasr:
            rotation_costs: list[tuple[float, float]] = []

            def rotated_search(offset: int) -> np.ndarray:
                result = self._array.search_rotated(
                    read, threshold, offset, MatchMode.ED_STAR
                )
                rotation_costs.append((result.energy_joules, result.latency_ns))
                return result.matches

            tasr_outcome = tasr_correct(
                decisions, rotated_search, threshold, lower_bound,
                nr=self._config.tasr_nr,
                direction=self._config.tasr_direction,
            )
            decisions = tasr_outcome.decisions
            n_searches += tasr_outcome.n_extra_searches
            for rot_energy, rot_latency in rotation_costs:
                energy += rot_energy
                latency += rot_latency

        return MatchOutcome(
            decisions=decisions, threshold=threshold, n_searches=n_searches,
            energy_joules=energy, latency_ns=latency,
            hdac_probability=p, tasr_lower_bound=lower_bound,
            hdac=hdac_outcome, tasr=tasr_outcome,
        )
