"""The assembled ASMCap matcher: ED* base search + HDAC + TASR.

:class:`AsmCapMatcher` drives one :class:`~repro.cam.array.CamArray`
through the full decision flow of Sections III-IV:

1. issue the ED* search (``S = 1``);
2. if HDAC is enabled and ``p`` is worth the extra cycle, issue the HD
   search (``S = 0``) and apply Algorithm 1;
3. if TASR is enabled and ``T >= Tl``, issue the rotated ED* searches
   through the shift registers and OR them in (Algorithm 2).

Every analog effect (variation noise, sense-amp behaviour) lives inside
the array; the matcher only sequences searches and combines their
decisions, mirroring the controller's role in Fig. 4(a).  All energy
and latency of the extra searches is accounted in the outcome.

**Batched matching.**  :meth:`AsmCapMatcher.match_batch` runs the same
flow over a ``(B, N)`` block of reads with three vectorised passes:
one batched ED* search, one batched HD search restricted (by boolean
mask) to the queries whose ``p`` warrants the extra cycle, and one
batched rotated search per TASR offset for the queries above ``Tl``.
Determinism is anchored on per-query *keys*: noise and HDAC draws are
keyed by ``(query_key, pass)``, so ``match(read, T, query_key=q)`` and
row ``q`` of ``match_batch`` produce bit-identical decisions no matter
how the work is ordered or sharded.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro import constants
from repro.cam.array import CamArray, StoredReference
from repro.cam.cell import MatchMode
from repro.cam.keyed_noise import fold_key, fold_key_block, fold_key_from
from repro.core import policy
from repro.core.hdac import (
    HdacOutcome,
    hdac_correct,
    hdac_correct_batch,
    hdac_correct_keyed,
    hdac_correct_sweep,
)
from repro.core.tasr import TasrOutcome, rotation_offsets, tasr_correct
from repro.errors import CamConfigError
from repro.genome.edits import ErrorModel

#: Pass tags separating the keyed noise streams of one query's searches.
_PASS_ED_STAR = 0
_PASS_HAMMING = 1
#: Rotated passes use ``_PASS_ROTATION + offset`` (offset may be
#: negative; the bias keeps the tag non-negative for seeding).
_PASS_ROTATION = 512

#: Domain-separation tag for the keyed HDAC uniform draws.
_HDAC_STREAM_TAG = 0x4DAC


@dataclass(frozen=True)
class MatcherConfig:
    """Strategy configuration for :class:`AsmCapMatcher`.

    Defaults are the paper's evaluated setting: both strategies on,
    alpha = 200, beta = 0.5, NR = 2, gamma = 2e-4.
    """

    enable_hdac: bool = True
    enable_tasr: bool = True
    hdac_alpha: float = constants.HDAC_ALPHA
    hdac_beta: float = constants.HDAC_BETA
    hdac_disable_threshold: float = constants.HDAC_DISABLE_THRESHOLD
    tasr_nr: int = constants.TASR_NR
    tasr_gamma: float = constants.TASR_GAMMA
    tasr_direction: str = "both"

    @classmethod
    def plain(cls) -> "MatcherConfig":
        """ASMCap without HDAC and TASR ('w/o H. and T.' in Fig. 7/8)."""
        return cls(enable_hdac=False, enable_tasr=False)


@dataclass(frozen=True)
class MatchOutcome:
    """Decisions and cost accounting for matching one read.

    Attributes
    ----------
    decisions:
        Final per-row boolean match decisions.
    threshold:
        The threshold ``T`` used.
    n_searches:
        Total search operations issued (base + HD + rotations).
    energy_joules / latency_ns:
        Summed over all issued searches — thin sums over the cost
        ledger's derived views (each pass the matcher sequences is a
        typed event in the array's ledger; see :mod:`repro.cost`).
    hdac_probability:
        The ``p`` used this call (0 when HDAC was skipped).
    tasr_lower_bound:
        The ``Tl`` in force.
    hdac / tasr:
        Detailed strategy outcomes (None when the strategy was off or
        did not trigger).
    """

    decisions: np.ndarray
    threshold: int
    n_searches: int
    energy_joules: float
    latency_ns: float
    hdac_probability: float
    tasr_lower_bound: int
    hdac: "HdacOutcome | None" = None
    tasr: "TasrOutcome | None" = None


@dataclass(frozen=True)
class MatchBatchOutcome:
    """Decisions and cost accounting for matching a block of reads.

    Per-query axes come first everywhere; totals are exposed as
    properties so reports can aggregate without re-deriving them.

    Attributes
    ----------
    decisions:
        ``(B, M)`` final per-query, per-row match decisions.
    thresholds:
        ``(B,)`` thresholds used (a scalar input is broadcast).
    n_searches:
        ``(B,)`` search operations issued per query.
    energy_joules / latency_ns:
        ``(B,)`` per-query array costs over all issued searches.
    hdac_probabilities:
        ``(B,)`` the ``p`` each query used (0 where HDAC was skipped).
    tasr_lower_bound:
        The ``Tl`` in force for the batch.
    hdac_mask / tasr_mask:
        ``(B,)`` boolean masks of the queries whose HD pass /
        rotation passes were issued.
    """

    decisions: np.ndarray
    thresholds: np.ndarray
    n_searches: np.ndarray
    energy_joules: np.ndarray
    latency_ns: np.ndarray
    hdac_probabilities: np.ndarray
    tasr_lower_bound: int
    hdac_mask: np.ndarray
    tasr_mask: np.ndarray

    @property
    def n_queries(self) -> int:
        return int(self.decisions.shape[0])

    @property
    def total_searches(self) -> int:
        return int(self.n_searches.sum())

    @property
    def total_energy_joules(self) -> float:
        return float(self.energy_joules.sum())

    @property
    def total_latency_ns(self) -> float:
        return float(self.latency_ns.sum())


@dataclass(frozen=True)
class MatchSweepOutcome:
    """Decisions and cost accounting for a block x threshold sweep.

    The threshold axis leads; slice ``t`` carries exactly what a
    :class:`MatchBatchOutcome` at ``thresholds[t]`` would have carried.

    Attributes
    ----------
    decisions:
        ``(T, B, M)`` final decisions (threshold, query, stored row).
    thresholds:
        ``(T,)`` the sweep vector.
    n_searches:
        ``(T, B)`` search operations a scalar path would have issued
        per (threshold, query) cell.
    energy_joules / latency_ns:
        ``(T, B)`` the equivalent scalar path's per-cell array costs
        (what Fig. 7's Monte-Carlo accounting charges); the sweep
        engine *computed* far less — see
        :attr:`repro.cam.array.SearchStats`.
    hdac_probabilities:
        ``(T,)`` the ``p`` in force per threshold (0 where HDAC was
        skipped).
    tasr_lower_bound:
        The ``Tl`` in force for the sweep.
    hdac_mask / tasr_mask:
        ``(T,)`` thresholds whose HD pass / rotation passes applied
        (eligibility is per threshold — every query of a sweep shares
        its threshold).
    """

    decisions: np.ndarray
    thresholds: np.ndarray
    n_searches: np.ndarray
    energy_joules: np.ndarray
    latency_ns: np.ndarray
    hdac_probabilities: np.ndarray
    tasr_lower_bound: int
    hdac_mask: np.ndarray
    tasr_mask: np.ndarray

    @property
    def n_thresholds(self) -> int:
        return int(self.decisions.shape[0])

    @property
    def n_queries(self) -> int:
        return int(self.decisions.shape[1])

    def at_threshold(self, threshold: int) -> np.ndarray:
        """The ``(B, M)`` decision slice for one sweep threshold."""
        index = np.flatnonzero(self.thresholds == int(threshold))
        if index.size == 0:
            raise CamConfigError(
                f"threshold {threshold} is not part of this sweep"
            )
        return self.decisions[int(index[0])]


class AsmCapMatcher:
    """Full ASMCap matching flow over one CAM array.

    Parameters
    ----------
    array:
        The (charge-domain) CAM array holding reference segments.
    error_model:
        The workload's error rates — HDAC's ``p`` and TASR's ``Tl`` are
        functions of these (the paper pre-processes them off-line).
    config:
        Strategy configuration.
    seed:
        Seed for HDAC's uniform draws.
    """

    def __init__(self, array: CamArray, error_model: ErrorModel,
                 config: "MatcherConfig | None" = None, seed: int = 0):
        self._array = array
        self._model = error_model
        self._config = config or MatcherConfig()
        self._seed = int(seed) & 0xFFFFFFFFFFFFFFFF
        self._hdac_prefix = fold_key((self._seed, _HDAC_STREAM_TAG))
        self._rng = np.random.default_rng(seed)
        if self._config.tasr_direction not in ("both", "left", "right"):
            raise CamConfigError(
                f"invalid tasr_direction {self._config.tasr_direction!r}"
            )

    @classmethod
    def over_stored(cls, stored: StoredReference, error_model: ErrorModel,
                    config: "MatcherConfig | None" = None,
                    *,
                    domain: str = "charge",
                    noisy: bool = True,
                    seed: int = 0,
                    ledger_compaction: "int | None" = None,
                    backend: "str | None" = None
                    ) -> "AsmCapMatcher":
        """A matcher whose array *borrows* a shared stored reference.

        The session-construction seam of the multi-session front end
        (:mod:`repro.service.frontend`): the expensive encode/store
        work happened once, in :meth:`StoredReference.encode`, and each
        call here builds only the cheap per-session state — a
        :class:`~repro.cam.array.CamArray` with its own *seed* (keyed
        noise prefix, sequential RNG, cost ledger) plus the matcher's
        own HDAC stream.  A matcher built this way is bit-identical to
        one over a privately-stored array with the same segments and
        seeds — that equivalence is what makes a frontend session
        reproduce a standalone service exactly.
        """
        array = CamArray(domain=domain, noisy=noisy, seed=seed,
                         ledger_compaction=ledger_compaction,
                         backend=backend, stored=stored)
        return cls(array, error_model, config, seed=seed)

    @property
    def array(self) -> CamArray:
        return self._array

    @property
    def config(self) -> MatcherConfig:
        return self._config

    @property
    def error_model(self) -> ErrorModel:
        return self._model

    def hdac_probability(self, threshold: int) -> float:
        """The off-line pre-processed ``p`` for this workload."""
        return policy.hdac_probability_for_model(
            self._model, threshold,
            alpha=self._config.hdac_alpha, beta=self._config.hdac_beta,
        )

    def tasr_lower_bound(self) -> int:
        """The off-line pre-processed ``Tl`` for this workload."""
        return policy.tasr_lower_bound_for_model(
            self._model, self._array.cols, gamma=self._config.tasr_gamma,
        )

    def _noise_key(self, query_key: "int | None",
                   pass_tag: int) -> "tuple[int, int] | None":
        """The array noise key for one (query, pass) pair, or None."""
        if query_key is None:
            return None
        return (int(query_key), pass_tag)

    def _hdac_state(self, query_key: int) -> int:
        """The folded keyed-stream state for one query's HDAC draws."""
        return fold_key_from(self._hdac_prefix, (int(query_key),))

    def match(self, read: np.ndarray, threshold: int,
              query_key: "int | None" = None) -> MatchOutcome:
        """Match one read against all stored rows at threshold ``T``.

        With a ``query_key`` all random draws (variation noise, HDAC
        uniforms) come from keyed streams, making the outcome
        bit-identical to row ``query_key``'s slice of a
        :meth:`match_batch` call that used the same keys — regardless
        of batch composition or execution order.
        """
        read = np.asarray(read, dtype=np.uint8)
        base = self._array.search(
            read, threshold, MatchMode.ED_STAR,
            noise_key=self._noise_key(query_key, _PASS_ED_STAR),
        )
        decisions = base.matches.copy()
        n_searches = 1
        energy = base.energy_joules
        latency = base.latency_ns

        # --- HDAC (Algorithm 1) -----------------------------------------
        hdac_outcome: HdacOutcome | None = None
        p = 0.0
        if self._config.enable_hdac:
            p_raw = self.hdac_probability(threshold)
            if policy.hdac_enabled(p_raw, self._config.hdac_disable_threshold):
                p = p_raw
                hd = self._array.search(
                    read, threshold, MatchMode.HAMMING,
                    noise_key=self._noise_key(query_key, _PASS_HAMMING),
                )
                n_searches += 1
                energy += hd.energy_joules
                latency += hd.latency_ns
                if query_key is None:
                    hdac_outcome = hdac_correct(decisions, hd.matches, p,
                                                self._rng)
                else:
                    hdac_outcome = hdac_correct_keyed(
                        decisions, hd.matches, p,
                        self._hdac_state(query_key),
                    )
                decisions = hdac_outcome.decisions

        # --- TASR (Algorithm 2) -------------------------------------------
        tasr_outcome: TasrOutcome | None = None
        lower_bound = self.tasr_lower_bound()
        if self._config.enable_tasr:
            rotation_costs: list[tuple[float, float]] = []

            def rotated_search(offset: int) -> np.ndarray:
                result = self._array.search_rotated(
                    read, threshold, offset, MatchMode.ED_STAR,
                    noise_key=self._noise_key(query_key,
                                              _PASS_ROTATION + offset),
                )
                rotation_costs.append((result.energy_joules, result.latency_ns))
                return result.matches

            tasr_outcome = tasr_correct(
                decisions, rotated_search, threshold, lower_bound,
                nr=self._config.tasr_nr,
                direction=self._config.tasr_direction,
            )
            decisions = tasr_outcome.decisions
            n_searches += tasr_outcome.n_extra_searches
            for rot_energy, rot_latency in rotation_costs:
                energy += rot_energy
                latency += rot_latency

        return MatchOutcome(
            decisions=decisions, threshold=threshold, n_searches=n_searches,
            energy_joules=energy, latency_ns=latency,
            hdac_probability=p, tasr_lower_bound=lower_bound,
            hdac=hdac_outcome, tasr=tasr_outcome,
        )

    def match_batch(self, reads: np.ndarray,
                    threshold: "int | np.ndarray",
                    query_keys: "Sequence[int] | None" = None
                    ) -> MatchBatchOutcome:
        """Match a ``(B, N)`` block of reads in three vectorised passes.

        1. one batched ED* search over the whole block;
        2. one batched HD search over the boolean mask of queries whose
           ``p`` clears the HDAC disable threshold (Algorithm 1);
        3. per TASR offset, one batched rotated ED* search over the
           queries with ``T >= Tl`` (Algorithm 2).

        Parameters
        ----------
        reads:
            ``(B, N)`` uint8 read codes.
        threshold:
            Scalar or ``(B,)`` per-query thresholds.
        query_keys:
            Per-query determinism keys; defaults to ``0..B-1``.  Use
            globally unique keys (e.g. the read's position in the full
            workload) so chunked and sharded executions stay
            bit-identical with the scalar path.
        """
        reads = np.asarray(reads, dtype=np.uint8)
        if reads.ndim != 2:
            raise CamConfigError(
                f"match_batch needs a (B, N) block, got shape {reads.shape}"
            )
        n_queries = reads.shape[0]
        thresholds = np.broadcast_to(
            np.asarray(threshold, dtype=int), (n_queries,)
        ).copy()
        if query_keys is None:
            keys = np.arange(n_queries, dtype=np.int64)
        else:
            if len(query_keys) != n_queries:
                raise CamConfigError(
                    f"{len(query_keys)} query keys for {n_queries} reads"
                )
            keys = np.asarray([int(k) for k in query_keys], dtype=np.int64)

        def pass_keys(subset: np.ndarray, tag: int) -> np.ndarray:
            """(B', 2) noise-key rows for one pass over a key subset."""
            return np.column_stack(
                (subset, np.full(subset.shape[0], tag, dtype=np.int64))
            )

        # HDAC eligibility is known before any search (``p`` is an
        # off-line function of the threshold), so when any query will
        # issue the HD pass one dual sweep supplies both modes' counts.
        probabilities = np.zeros(n_queries)
        hdac_mask = np.zeros(n_queries, dtype=bool)
        p_raw = np.zeros(n_queries)
        if self._config.enable_hdac and n_queries:
            for t in np.unique(thresholds):
                p_raw[thresholds == t] = self.hdac_probability(int(t))
            hdac_mask = p_raw >= self._config.hdac_disable_threshold

        # One dual sweep shares the encoding only when every query will
        # issue the HD pass (the common scalar-threshold case); with a
        # sparse mask the HD pass computes counts for its subset alone.
        ed_counts = hd_counts = None
        if n_queries and hdac_mask.all():
            ed_counts, hd_counts = \
                self._array.mismatch_counts_batch_dual(reads)

        base = self._array.search_batch(
            reads, thresholds, MatchMode.ED_STAR,
            noise_keys=pass_keys(keys, _PASS_ED_STAR),
            precomputed_counts=ed_counts,
        )
        decisions = base.matches.copy()
        n_searches = np.ones(n_queries, dtype=int)
        energy = base.energy_per_query_joules.copy()
        latency = np.full(n_queries, self._array.search_time_ns)

        # --- HDAC (Algorithm 1), masked to the queries worth the cycle --
        if hdac_mask.any():
            idx = np.flatnonzero(hdac_mask)
            hd = self._array.search_batch(
                reads[idx], thresholds[idx], MatchMode.HAMMING,
                noise_keys=pass_keys(keys[idx], _PASS_HAMMING),
                precomputed_counts=(None if hd_counts is None
                                    else hd_counts[idx]),
            )
            states = fold_key_block(self._hdac_prefix, keys[idx])
            decisions[idx] = hdac_correct_batch(
                decisions[idx], hd.matches, p_raw[idx], states
            )
            n_searches[idx] += 1
            energy[idx] += hd.energy_per_query_joules
            latency[idx] += self._array.search_time_ns
            probabilities = np.where(hdac_mask, p_raw, 0.0)

        # --- TASR (Algorithm 2), masked to the queries above Tl ----------
        lower_bound = self.tasr_lower_bound()
        tasr_mask = np.zeros(n_queries, dtype=bool)
        if self._config.enable_tasr and n_queries:
            tasr_mask = thresholds >= lower_bound
            if tasr_mask.any():
                idx = np.flatnonzero(tasr_mask)
                offsets = rotation_offsets(self._config.tasr_nr,
                                           self._config.tasr_direction)
                for offset in offsets:
                    rotated = np.roll(reads[idx], -offset, axis=1)
                    result = self._array.search_batch(
                        rotated, thresholds[idx], MatchMode.ED_STAR,
                        noise_keys=pass_keys(keys[idx],
                                             _PASS_ROTATION + offset),
                        rotation=offset,
                    )
                    decisions[idx] |= result.matches
                    n_searches[idx] += 1
                    energy[idx] += result.energy_per_query_joules
                    latency[idx] += self._array.search_time_ns

        return MatchBatchOutcome(
            decisions=decisions, thresholds=thresholds,
            n_searches=n_searches, energy_joules=energy,
            latency_ns=latency, hdac_probabilities=probabilities,
            tasr_lower_bound=lower_bound,
            hdac_mask=hdac_mask, tasr_mask=tasr_mask,
        )

    def match_sweep(self, reads: np.ndarray,
                    thresholds: "Sequence[int] | np.ndarray",
                    query_keys: "Sequence[int] | None" = None
                    ) -> MatchSweepOutcome:
        """Match a ``(B, N)`` block against a whole threshold sweep.

        The engine behind Fig. 7's curves: every random draw of the
        flow is keyed by ``(query_key, pass)`` — never by the threshold
        — so a ``T``-point sweep computes each pass's mismatch counts
        and noisy matchline voltages **once** and applies the threshold
        vector as vectorised sense-amp reference comparisons:

        1. one ED* count + noise pass, ``T`` reference comparisons;
        2. one HD count + noise pass shared by every threshold whose
           ``p`` clears the HDAC disable cut, with Algorithm 1 applied
           per threshold on the per-query keyed streams;
        3. one rotated ED* pass per TASR offset shared by every
           threshold at or above ``Tl`` (Algorithm 2).

        A sweep therefore issues ``2 + 2 * NR`` array passes instead of
        the scalar path's up-to ``T * (2 + 2 * NR)``, while slice ``t``
        of the result stays bit-identical to
        ``match_batch(reads, thresholds[t], query_keys)`` — and hence
        to per-read ``match(read, thresholds[t], query_key=k)`` calls.

        Parameters
        ----------
        reads:
            ``(B, N)`` uint8 read codes.
        thresholds:
            ``(T,)`` sweep vector shared by the whole block.
        query_keys:
            Per-query determinism keys; defaults to ``0..B-1``.
        """
        reads = np.asarray(reads, dtype=np.uint8)
        if reads.ndim != 2:
            raise CamConfigError(
                f"match_sweep needs a (B, N) block, got shape {reads.shape}"
            )
        n_queries = reads.shape[0]
        thresholds = np.asarray(thresholds, dtype=int)
        if thresholds.ndim != 1 or thresholds.shape[0] == 0:
            raise CamConfigError(
                f"thresholds must be a non-empty 1-D sweep vector, got "
                f"shape {thresholds.shape}"
            )
        n_thresholds = thresholds.shape[0]
        if query_keys is None:
            keys = np.arange(n_queries, dtype=np.int64)
        else:
            if len(query_keys) != n_queries:
                raise CamConfigError(
                    f"{len(query_keys)} query keys for {n_queries} reads"
                )
            keys = np.asarray([int(k) for k in query_keys], dtype=np.int64)

        def pass_keys(tag: int) -> np.ndarray:
            return np.column_stack(
                (keys, np.full(n_queries, tag, dtype=np.int64))
            )

        # Per-threshold HDAC eligibility (p is an off-line function of
        # the threshold alone; every query of a sweep shares it).
        p_per_threshold = np.zeros(n_thresholds)
        hdac_mask = np.zeros(n_thresholds, dtype=bool)
        if self._config.enable_hdac:
            p_per_threshold = np.asarray(
                [self.hdac_probability(int(t)) for t in thresholds]
            )
            hdac_mask = (p_per_threshold
                         >= self._config.hdac_disable_threshold)

        ed_counts = hd_counts = None
        if n_queries and hdac_mask.any():
            ed_counts, hd_counts = \
                self._array.mismatch_counts_batch_dual(reads)

        base = self._array.search_sweep(
            reads, thresholds, MatchMode.ED_STAR,
            noise_keys=pass_keys(_PASS_ED_STAR),
            precomputed_counts=ed_counts,
        )
        decisions = base.matches.copy()
        n_searches = np.ones((n_thresholds, n_queries), dtype=int)
        energy = np.tile(base.energy_per_query_joules, (n_thresholds, 1))
        latency = np.full((n_thresholds, n_queries),
                          self._array.search_time_ns)

        # --- HDAC (Algorithm 1), shared HD pass, per-threshold apply --
        probabilities = np.where(hdac_mask, p_per_threshold, 0.0)
        if hdac_mask.any() and n_queries:
            idx = np.flatnonzero(hdac_mask)
            hd = self._array.search_sweep(
                reads, thresholds[idx], MatchMode.HAMMING,
                noise_keys=pass_keys(_PASS_HAMMING),
                precomputed_counts=hd_counts,
            )
            states = fold_key_block(self._hdac_prefix, keys)
            decisions[idx] = hdac_correct_sweep(
                decisions[idx], hd.matches, p_per_threshold[idx], states
            )
            n_searches[idx] += 1
            energy[idx] += hd.energy_per_query_joules
            latency[idx] += self._array.search_time_ns

        # --- TASR (Algorithm 2), shared rotated passes above Tl -------
        lower_bound = self.tasr_lower_bound()
        tasr_mask = np.zeros(n_thresholds, dtype=bool)
        if self._config.enable_tasr and n_queries:
            tasr_mask = thresholds >= lower_bound
            if tasr_mask.any():
                idx = np.flatnonzero(tasr_mask)
                offsets = rotation_offsets(self._config.tasr_nr,
                                           self._config.tasr_direction)
                for offset in offsets:
                    rotated = np.roll(reads, -offset, axis=1)
                    result = self._array.search_sweep(
                        rotated, thresholds[idx], MatchMode.ED_STAR,
                        noise_keys=pass_keys(_PASS_ROTATION + offset),
                        rotation=offset,
                    )
                    decisions[idx] |= result.matches
                    n_searches[idx] += 1
                    energy[idx] += result.energy_per_query_joules
                    latency[idx] += self._array.search_time_ns

        return MatchSweepOutcome(
            decisions=decisions, thresholds=thresholds,
            n_searches=n_searches, energy_joules=energy,
            latency_ns=latency, hdac_probabilities=probabilities,
            tasr_lower_bound=lower_bound,
            hdac_mask=hdac_mask, tasr_mask=tasr_mask,
        )
