"""ASMCap's core contribution: the matching flow with HDAC and TASR.

* :mod:`repro.core.policy` — the ``p`` and ``Tl`` design rules;
* :mod:`repro.core.hdac` — Algorithm 1 (substitution-dominant FP fix);
* :mod:`repro.core.tasr` — Algorithm 2 (consecutive-indel FN fix);
* :mod:`repro.core.matcher` — the assembled search flow over an array;
* :mod:`repro.core.pipeline` — batch read mapping.
"""

from repro.core.fragmentation import FragmentedMatcher, FragmentOutcome
from repro.core.hdac import HdacOutcome, hdac_correct
from repro.core.matcher import (
    AsmCapMatcher,
    MatchBatchOutcome,
    MatchOutcome,
    MatchSweepOutcome,
    MatcherConfig,
)
from repro.core.pipeline import (
    MappingReport,
    ReadMapping,
    ReadMappingPipeline,
    ShardedReadMappingPipeline,
    encode_shard_references,
    resolve_shard_plan,
)
from repro.core.policy import (
    hdac_enabled,
    hdac_probability,
    hdac_probability_for_model,
    tasr_enabled,
    tasr_lower_bound,
    tasr_lower_bound_for_model,
)
from repro.core.tasr import TasrOutcome, rotation_offsets, tasr_correct

__all__ = [
    "AsmCapMatcher",
    "FragmentOutcome",
    "FragmentedMatcher",
    "HdacOutcome",
    "MappingReport",
    "MatchBatchOutcome",
    "MatchOutcome",
    "MatchSweepOutcome",
    "MatcherConfig",
    "ReadMapping",
    "ReadMappingPipeline",
    "ShardedReadMappingPipeline",
    "TasrOutcome",
    "encode_shard_references",
    "hdac_correct",
    "hdac_enabled",
    "hdac_probability",
    "hdac_probability_for_model",
    "resolve_shard_plan",
    "rotation_offsets",
    "tasr_correct",
    "tasr_enabled",
    "tasr_lower_bound",
    "tasr_lower_bound_for_model",
]
