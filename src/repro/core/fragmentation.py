"""Long-read fragmentation: matching reads wider than the array.

The paper's top architecture (Fig. 4(a)) notes the global buffer "can
fetch the entire reads **or k-mers** for the subsequent match according
to the read length": when a read is longer than the array width ``N``,
it is split into ``N``-base fragments that are searched independently
and whose decisions are combined.  EDAM's read-length ceiling (44
distinguishable states) forces fragmentation much earlier than
ASMCap's — one of the charge domain's practical advantages.

Combination rule: fragment ``f`` of the read should match row ``r`` of
array column-block ``f`` when the read originates at stored segment
``r``; a read matches a segment when at least ``min_fragment_matches``
of its fragments match the corresponding stored fragment row, with the
per-fragment threshold given by splitting the read-level budget ``T``
across fragments (ceil division — a slightly permissive split that
favours sensitivity, matching the seed-filter role fragmentation plays
in practice).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.cam.array import CamArray
from repro.cam.cell import MatchMode
from repro.errors import CamConfigError, ThresholdError


@dataclass(frozen=True)
class FragmentOutcome:
    """Result of one fragmented match.

    Attributes
    ----------
    decisions:
        Per-segment combined decisions.
    fragment_matches:
        ``(n_segments, n_fragments)`` boolean matrix of per-fragment
        decisions.
    per_fragment_threshold:
        The threshold each fragment search used.
    n_searches:
        Total search operations issued (one per fragment).
    energy_joules / latency_ns:
        Summed over fragment searches.
    """

    decisions: np.ndarray
    fragment_matches: np.ndarray
    per_fragment_threshold: int
    n_searches: int
    energy_joules: float
    latency_ns: float


class FragmentedMatcher:
    """Match reads of ``n_fragments * N`` bases on an ``M x N`` array.

    The reference segments are equally long reads' worth of bases; each
    stored segment occupies ``n_fragments`` consecutive *logical* rows
    (one per fragment) laid out fragment-major: array row
    ``f * n_segments + s`` holds fragment ``f`` of segment ``s``.

    Parameters
    ----------
    array:
        The CAM array; its ``rows`` must hold
        ``n_segments * n_fragments`` fragment rows.
    segments:
        ``(n_segments, n_fragments * N)`` uint8 matrix of long
        reference segments.
    min_fragment_matches:
        Fragments that must match for a segment-level 'match'.
    """

    def __init__(self, array: CamArray, segments: np.ndarray,
                 min_fragment_matches: int = 1):
        segments = np.asarray(segments, dtype=np.uint8)
        if segments.ndim != 2:
            raise CamConfigError("segments must be a 2-D matrix")
        n_segments, total_len = segments.shape
        width = array.cols
        if total_len % width != 0:
            raise CamConfigError(
                f"segment length {total_len} is not a multiple of the "
                f"array width {width}"
            )
        n_fragments = total_len // width
        if n_fragments < 1:
            raise CamConfigError("segments shorter than one fragment")
        if n_segments * n_fragments > array.rows:
            raise CamConfigError(
                f"{n_segments} segments x {n_fragments} fragments exceed "
                f"{array.rows} array rows"
            )
        if not 1 <= min_fragment_matches <= n_fragments:
            raise ThresholdError(
                f"min_fragment_matches must be in 1..{n_fragments}, got "
                f"{min_fragment_matches}"
            )
        self._array = array
        self._n_segments = n_segments
        self._n_fragments = n_fragments
        self._min_matches = min_fragment_matches
        rows = np.concatenate([
            segments[:, f * width : (f + 1) * width]
            for f in range(self._n_fragments)
        ])
        array.store(rows)

    @property
    def n_segments(self) -> int:
        return self._n_segments

    @property
    def n_fragments(self) -> int:
        return self._n_fragments

    @property
    def read_length(self) -> int:
        return self._n_fragments * self._array.cols

    def per_fragment_threshold(self, threshold: int) -> int:
        """Split a read-level edit budget across fragments."""
        if threshold < 0:
            raise ThresholdError(
                f"threshold must be non-negative, got {threshold}"
            )
        return math.ceil(threshold / self._n_fragments)

    def match(self, read: np.ndarray, threshold: int,
              mode: MatchMode = MatchMode.ED_STAR) -> FragmentOutcome:
        """Match one long read at read-level threshold ``T``."""
        read = np.asarray(read, dtype=np.uint8)
        if read.shape != (self.read_length,):
            raise CamConfigError(
                f"read shape {read.shape} != expected ({self.read_length},)"
            )
        fragment_threshold = self.per_fragment_threshold(threshold)
        width = self._array.cols
        matches = np.zeros((self._n_segments, self._n_fragments), dtype=bool)
        energy = latency = 0.0
        for f in range(self._n_fragments):
            fragment = read[f * width : (f + 1) * width]
            result = self._array.search(fragment, fragment_threshold, mode)
            block = result.matches[
                f * self._n_segments : (f + 1) * self._n_segments
            ]
            matches[:, f] = block
            energy += result.energy_joules
            latency += result.latency_ns
        decisions = matches.sum(axis=1) >= self._min_matches
        return FragmentOutcome(
            decisions=decisions,
            fragment_matches=matches,
            per_fragment_threshold=fragment_threshold,
            n_searches=self._n_fragments,
            energy_joules=energy,
            latency_ns=latency,
        )
