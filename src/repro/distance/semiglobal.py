"""Semiglobal alignment: best placement of a read inside a reference.

Global edit distance forces the read to span the whole reference;
*semiglobal* alignment lets the read start and end anywhere in the
reference (free leading/trailing reference gaps), which is the actual
read-mapping question: "where does this read fit best, and how many
edits does the best fit need?"

Used by the verification tooling (does the CAM's matched segment agree
with the best semiglobal placement?) and by the SaVI baseline's
accuracy analysis.  The implementation is the Myers bit-parallel
recurrence with the semiglobal initialisation (score resets are free on
the text side), giving ``O(n)`` per reference position.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import SequenceError
from repro.genome import alphabet
from repro.genome.sequence import DnaSequence


@dataclass(frozen=True)
class SemiglobalHit:
    """Best semiglobal placement of a read.

    Attributes
    ----------
    distance:
        Edit distance of the best placement.
    end:
        Reference position one past the placement's last aligned base.
    all_ends:
        Every reference end position achieving ``distance``.
    """

    distance: int
    end: int
    all_ends: tuple[int, ...]


def semiglobal_distances(read: DnaSequence,
                         reference: DnaSequence) -> np.ndarray:
    """Edit distance of *read* vs every reference end position.

    Returns an array ``D`` of length ``len(reference) + 1`` where
    ``D[j]`` is the minimum edit distance between the read and any
    reference substring ending at position ``j`` (``D[0]`` is the
    read length: aligning against the empty prefix).
    """
    pattern = read.codes
    text = reference.codes
    m = len(pattern)
    if m == 0:
        return np.zeros(len(text) + 1, dtype=np.int32)

    masks = [0] * alphabet.ALPHABET_SIZE
    for index, code in enumerate(pattern):
        masks[int(code)] |= 1 << index
    all_ones = (1 << m) - 1
    high_bit = 1 << (m - 1)

    pv = all_ones
    mv = 0
    score = m
    out = np.empty(len(text) + 1, dtype=np.int32)
    out[0] = m
    for column, code in enumerate(text, start=1):
        eq = masks[int(code)]
        xv = eq | mv
        xh = (((eq & pv) + pv) ^ pv) | eq
        ph = mv | ~(xh | pv) & all_ones
        mh = pv & xh
        if ph & high_bit:
            score += 1
        elif mh & high_bit:
            score -= 1
        # Semiglobal boundary: the top DP row is all zeros (leading
        # reference gaps are free), so the horizontal carry-in at row 0
        # is 0 — unlike the global variant, which ORs a 1 into ph here.
        ph = (ph << 1) & all_ones
        mh = (mh << 1) & all_ones
        pv = (mh | ~(xv | ph)) & all_ones
        mv = ph & xv
        out[column] = score
    return out


def best_semiglobal_hit(read: DnaSequence,
                        reference: DnaSequence) -> SemiglobalHit:
    """The best placement(s) of *read* in *reference*."""
    if len(read) == 0:
        raise SequenceError("cannot place an empty read")
    distances = semiglobal_distances(read, reference)
    best = int(distances.min())
    ends = tuple(int(j) for j in np.nonzero(distances == best)[0])
    return SemiglobalHit(distance=best, end=ends[0], all_ends=ends)


def occurrences_within(read: DnaSequence, reference: DnaSequence,
                       threshold: int) -> list[int]:
    """End positions where the read matches within *threshold* edits."""
    if threshold < 0:
        raise SequenceError(f"threshold must be non-negative, got {threshold}")
    distances = semiglobal_distances(read, reference)
    return [int(j) for j in np.nonzero(distances <= threshold)[0]]
