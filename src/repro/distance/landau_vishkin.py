"""Landau-Vishkin k-bounded edit distance (Landau & Vishkin, 1989).

The LV algorithm answers "is ED(a, b) <= k?" in ``O(k^2 + k*n)`` time by
extending matches greedily along diagonals: ``L(d, e)`` is the furthest
row ``i`` reachable on diagonal ``d = j - i`` with exactly ``e`` edits,
and each step slides along the run of exact matches for free.

Roles in this library:

* a fourth independent oracle for the exact-ED kernels (row DP, Myers
  and the CM traversal are cross-checked against it in the tests);
* the asymptotically right tool when thresholds are tiny — the
  ground-truth labeller uses the banded DP because it vectorises across
  pairs, but single-pair callers with small ``k`` are faster here.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ThresholdError
from repro.genome.sequence import DnaSequence

_SENTINEL = -10**9


def _extend(a: np.ndarray, b: np.ndarray, i: int, j: int) -> int:
    """Length of the exact-match run starting at ``a[i:]`` vs ``b[j:]``."""
    limit = min(len(a) - i, len(b) - j)
    if limit <= 0:
        return 0
    window_a = a[i : i + limit]
    window_b = b[j : j + limit]
    mismatches = np.nonzero(window_a != window_b)[0]
    return int(mismatches[0]) if mismatches.size else limit


def landau_vishkin(a: DnaSequence, b: DnaSequence, k: int) -> int:
    """Edit distance if it is ``<= k``, else ``k + 1``.

    Parameters
    ----------
    a, b:
        The two sequences (any lengths).
    k:
        Edit bound; the answer is exact whenever the true distance is
        at most ``k``.
    """
    if k < 0:
        raise ThresholdError(f"k must be non-negative, got {k}")
    x, y = a.codes, b.codes
    n, m = len(x), len(y)
    if abs(n - m) > k:
        return k + 1

    # previous[d + k + 1] = L(d, e-1); guard cells at both ends.
    previous = np.full(2 * k + 3, _SENTINEL, dtype=np.int64)

    run = _extend(x, y, 0, 0)
    if run >= n and run >= m:
        return 0
    previous[k + 1] = run

    for e in range(1, k + 1):
        current = np.full_like(previous, _SENTINEL)
        for d in range(-min(e, k), min(e, k) + 1):
            offset = d + k + 1
            # Predecessors, each spending one edit:
            #  - substitution: same diagonal, advance one row;
            #  - insertion (consume b only): diagonal d-1, same row;
            #  - deletion (consume a only): diagonal d+1, advance one row.
            best = max(
                previous[offset] + 1,
                previous[offset - 1],
                previous[offset + 1] + 1,
            )
            # Row 0 of diagonal d is always reachable with |d| <= e
            # edits (|d| leading indels), which also absorbs the
            # sentinel arithmetic at the diagonal frontier.
            best = max(best, 0)
            i = min(int(best), n)
            j = i + d
            if j < 0 or j > m:
                continue
            i += _extend(x, y, i, j)
            j = i + d
            current[offset] = i
            if i >= n and j >= m:
                return e
        previous = current
    return k + 1


def lv_within(a: DnaSequence, b: DnaSequence, k: int) -> bool:
    """Predicate form: ``ED(a, b) <= k``."""
    return landau_vishkin(a, b, k) <= k
