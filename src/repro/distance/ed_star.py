"""ED* — the neighbour-tolerant mismatch count of EDAM and ASMCap.

For a stored segment ``S`` and a read ``R`` of equal length ``N``, cell
``i`` *matches* when the stored base equals the co-located read base or
either of its immediate neighbours (Fig. 2):

    match(i) = (S[i] == R[i]) or (S[i] == R[i-1]) or (S[i] == R[i+1])

``ED*`` is the number of cells where none of the three comparisons hit.
Because the neighbour comparisons absorb single-base shifts, ED* tracks
true edit distance much better than Hamming distance when isolated
indels occur — that is the entire premise of EDAM and ASMCap.  Edge
cells have only one neighbour; the missing comparison contributes no
match.

Properties (exercised by the property-based tests):

* ``0 <= ED*(S, R) <= HD(S, R)`` — the neighbour terms can only turn
  mismatches into matches;
* ``ED*(S, S) == 0``;
* ED* is *not* symmetric and *not* a metric, and it may over- or
  under-estimate true edit distance (the paper's Fig. 2 examples) —
  those misjudgments are what HDAC and TASR correct.
"""

from __future__ import annotations

import numpy as np

from repro.errors import SequenceError
from repro.genome.sequence import DnaSequence


def match_planes(segments: np.ndarray,
                 read: np.ndarray) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """The three partial-match planes ``(O_L, O_C, O_R)``.

    Mirrors the per-cell comparison logic of Fig. 4(c): plane entry
    ``[i, j]`` is True when stored base ``j`` of row ``i`` matches the
    left-neighbour / co-located / right-neighbour read base.

    Parameters
    ----------
    segments:
        ``(M, N)`` uint8 matrix of stored rows.
    read:
        ``(N,)`` uint8 read codes.
    """
    segments = np.asarray(segments)
    read = np.asarray(read)
    if segments.ndim != 2:
        raise SequenceError(f"segments must be 2-D, got shape {segments.shape}")
    if read.ndim != 1 or read.shape[0] != segments.shape[1]:
        raise SequenceError(
            f"read shape {read.shape} incompatible with segments "
            f"{segments.shape}"
        )
    o_c = segments == read[None, :]
    o_l = np.zeros_like(o_c)
    o_r = np.zeros_like(o_c)
    if read.shape[0] > 1:
        # O_L: stored base j vs read base j-1 (no left neighbour at j=0).
        o_l[:, 1:] = segments[:, 1:] == read[None, :-1]
        # O_R: stored base j vs read base j+1 (no right neighbour at j=N-1).
        o_r[:, :-1] = segments[:, :-1] == read[None, 1:]
    return o_l, o_c, o_r


def ed_star_batch(segments: np.ndarray, read: np.ndarray) -> np.ndarray:
    """ED* of one read against many stored segments, ``(M,)`` ints."""
    o_l, o_c, o_r = match_planes(segments, read)
    matched = o_l | o_c | o_r
    return np.count_nonzero(~matched, axis=1)


def match_planes_batch(
        segments: np.ndarray,
        reads: np.ndarray) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """The ``(O_L, O_C, O_R)`` planes for a whole block of reads.

    The batched counterpart of :func:`match_planes`: one 3-D broadcast
    evaluates every (read, row, cell) comparison at once, modelling a
    global buffer streaming ``B`` reads into the array back-to-back.

    Parameters
    ----------
    segments:
        ``(M, N)`` uint8 matrix of stored rows.
    reads:
        ``(B, N)`` uint8 matrix of read codes.

    Returns
    -------
    Three boolean ``(B, M, N)`` planes; ``plane[q, i, j]`` is the
    comparison outcome of read ``q`` against stored base ``j`` of row
    ``i``, bit-exact with :func:`match_planes` applied per read.
    """
    segments = np.asarray(segments)
    reads = np.asarray(reads)
    if segments.ndim != 2:
        raise SequenceError(f"segments must be 2-D, got shape {segments.shape}")
    if reads.ndim != 2 or reads.shape[1] != segments.shape[1]:
        raise SequenceError(
            f"reads shape {reads.shape} incompatible with segments "
            f"{segments.shape}"
        )
    o_c = segments[None, :, :] == reads[:, None, :]
    o_l = np.zeros_like(o_c)
    o_r = np.zeros_like(o_c)
    if reads.shape[1] > 1:
        o_l[:, :, 1:] = segments[None, :, 1:] == reads[:, None, :-1]
        o_r[:, :, :-1] = segments[None, :, :-1] == reads[:, None, 1:]
    return o_l, o_c, o_r


def ed_star_counts_batch(segments: np.ndarray,
                         reads: np.ndarray) -> np.ndarray:
    """ED* of every read against every segment, ``(B, M)`` ints.

    Memory-lean version of :func:`match_planes_batch` + reduce: the
    neighbour planes are OR-ed into one buffer instead of being
    materialised separately.
    """
    segments = np.asarray(segments)
    reads = np.asarray(reads)
    if segments.ndim != 2:
        raise SequenceError(f"segments must be 2-D, got shape {segments.shape}")
    if reads.ndim != 2 or reads.shape[1] != segments.shape[1]:
        raise SequenceError(
            f"reads shape {reads.shape} incompatible with segments "
            f"{segments.shape}"
        )
    matched = segments[None, :, :] == reads[:, None, :]
    if reads.shape[1] > 1:
        np.logical_or(matched[:, :, 1:],
                      segments[None, :, 1:] == reads[:, None, :-1],
                      out=matched[:, :, 1:])
        np.logical_or(matched[:, :, :-1],
                      segments[None, :, :-1] == reads[:, None, 1:],
                      out=matched[:, :, :-1])
    return matched.shape[2] - np.count_nonzero(matched, axis=2)


def ed_star(segment: DnaSequence, read: DnaSequence) -> int:
    """ED* between one stored segment and one read (equal lengths)."""
    if len(segment) != len(read):
        raise SequenceError(
            f"ED* needs equal lengths, got {len(segment)} and {len(read)}"
        )
    if len(segment) == 0:
        return 0
    return int(ed_star_batch(segment.codes[None, :], read.codes)[0])


#: Target element count per (chunk, M, N) block of the batched kernels.
_CHUNK_ELEMS = 1 << 23


def mismatch_counts_all_reads(segments: np.ndarray,
                              reads: np.ndarray) -> np.ndarray:
    """ED* for every (read, segment) pair: ``(R, M)`` int matrix.

    Vectorised through :func:`ed_star_counts_batch` in chunks so peak
    memory stays bounded for workload-sized read blocks.
    """
    segments = np.asarray(segments)
    reads = np.asarray(reads)
    if reads.ndim != 2:
        raise SequenceError(f"reads must be 2-D, got shape {reads.shape}")
    if segments.ndim != 2:
        raise SequenceError(f"segments must be 2-D, got shape {segments.shape}")
    n_reads = reads.shape[0]
    counts = np.empty((n_reads, segments.shape[0]), dtype=np.intp)
    chunk = max(1, _CHUNK_ELEMS // max(1, segments.size))
    for start in range(0, n_reads, chunk):
        counts[start:start + chunk] = ed_star_counts_batch(
            segments, reads[start:start + chunk]
        )
    return counts
