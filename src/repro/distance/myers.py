"""Myers' bit-parallel edit distance (Myers, JACM 1999).

The bit-parallel algorithm tracks the last DP column of the Levenshtein
matrix as two bit vectors (positive and negative deltas) and advances one
text character per iteration in ``O(len(pattern)/w)`` word operations.
Python integers are arbitrary precision, so one "word" comfortably holds
a whole 256-base pattern.

This serves two roles:

* an independent oracle for the DP kernels in the test suite;
* the software inner loop of the CM-CPU baseline's *functional* path
  (the baseline's cost model charges the DP cell count, as the paper's
  CM-CPU comparator does, but the functional result comes from here).
"""

from __future__ import annotations

import numpy as np

from repro.genome import alphabet
from repro.genome.sequence import DnaSequence


def _pattern_masks(pattern: np.ndarray) -> list[int]:
    """Bit mask per alphabet symbol: bit i set iff pattern[i] == symbol."""
    masks = [0] * alphabet.ALPHABET_SIZE
    for i, code in enumerate(pattern):
        masks[int(code)] |= 1 << i
    return masks


def myers_edit_distance(a: DnaSequence, b: DnaSequence) -> int:
    """Global edit distance via the bit-parallel recurrence.

    ``a`` plays the pattern role and ``b`` the text role; the result is
    symmetric. Empty sequences are handled up front.
    """
    pattern, text = a.codes, b.codes
    m, n = len(pattern), len(text)
    if m == 0:
        return n
    if n == 0:
        return m

    peq = _pattern_masks(pattern)
    all_ones = (1 << m) - 1
    high_bit = 1 << (m - 1)

    pv = all_ones  # positive vertical deltas
    mv = 0         # negative vertical deltas
    score = m

    for code in text:
        eq = peq[int(code)]
        xv = eq | mv
        xh = (((eq & pv) + pv) ^ pv) | eq

        ph = mv | ~(xh | pv) & all_ones
        mh = pv & xh

        if ph & high_bit:
            score += 1
        elif mh & high_bit:
            score -= 1

        ph = ((ph << 1) | 1) & all_ones
        mh = (mh << 1) & all_ones
        pv = (mh | ~(xv | ph)) & all_ones
        mv = ph & xv

    return score


def myers_distance_to_all(pattern: DnaSequence,
                          segments: np.ndarray) -> np.ndarray:
    """Edit distance of *pattern* against each row of *segments*."""
    segments = np.asarray(segments, dtype=np.uint8)
    return np.array([
        myers_edit_distance(pattern, DnaSequence(row)) for row in segments
    ], dtype=np.int32)
