"""Global alignment with traceback: edit scripts and CIGAR strings.

The accelerator answers *whether* a read matches a segment; downstream
genomics tooling wants *how* — which bases were substituted, inserted
or deleted.  This module runs the unit-cost DP with traceback and emits
the standard CIGAR representation (``=`` match, ``X`` mismatch, ``I``
insertion into the read, ``D`` deletion from the read).

Traceback tie-breaking prefers diagonal moves (match/mismatch), then
deletion, then insertion — the convention most aligners use, and it
keeps indels left-shifted in homopolymer runs for deterministic output.
"""

from __future__ import annotations

from dataclasses import dataclass


from repro.distance.edit_distance import edit_distance_matrix
from repro.errors import SequenceError
from repro.genome.sequence import DnaSequence

#: CIGAR opcodes in this module's extended (``=``/``X``) form.
CIGAR_OPS = ("=", "X", "I", "D")


@dataclass(frozen=True)
class Alignment:
    """A traced global alignment.

    Attributes
    ----------
    distance:
        The edit distance (number of X/I/D columns).
    cigar:
        Run-length encoded operations, e.g. ``"12=1X5=2D8="``.
    aligned_a / aligned_b:
        Gapped alignment rows (``-`` marks gaps).
    """

    distance: int
    cigar: str
    aligned_a: str
    aligned_b: str

    def operations(self) -> list[tuple[int, str]]:
        """Decode the CIGAR into ``(count, op)`` pairs."""
        out: list[tuple[int, str]] = []
        count = ""
        for ch in self.cigar:
            if ch.isdigit():
                count += ch
            else:
                if ch not in CIGAR_OPS:
                    raise SequenceError(f"invalid CIGAR op {ch!r}")
                out.append((int(count), ch))
                count = ""
        return out


def align(a: DnaSequence, b: DnaSequence) -> Alignment:
    """Globally align *a* (reference role) and *b* (read role).

    ``I`` means a base present in *b* but not *a*; ``D`` the reverse.
    """
    table = edit_distance_matrix(a, b)
    x, y = a.codes, b.codes
    i, j = len(x), len(y)
    ops: list[str] = []
    row_a: list[str] = []
    row_b: list[str] = []
    text_a, text_b = str(a), str(b)
    while i > 0 or j > 0:
        if i > 0 and j > 0:
            diagonal = table[i - 1, j - 1] + (x[i - 1] != y[j - 1])
            if table[i, j] == diagonal:
                ops.append("=" if x[i - 1] == y[j - 1] else "X")
                row_a.append(text_a[i - 1])
                row_b.append(text_b[j - 1])
                i -= 1
                j -= 1
                continue
        if i > 0 and table[i, j] == table[i - 1, j] + 1:
            ops.append("D")
            row_a.append(text_a[i - 1])
            row_b.append("-")
            i -= 1
            continue
        ops.append("I")
        row_a.append("-")
        row_b.append(text_b[j - 1])
        j -= 1
    ops.reverse()
    row_a.reverse()
    row_b.reverse()
    return Alignment(
        distance=int(table[-1, -1]),
        cigar=_run_length(ops),
        aligned_a="".join(row_a),
        aligned_b="".join(row_b),
    )


def _run_length(ops: list[str]) -> str:
    if not ops:
        return ""
    chunks: list[str] = []
    current = ops[0]
    count = 1
    for op in ops[1:]:
        if op == current:
            count += 1
        else:
            chunks.append(f"{count}{current}")
            current = op
            count = 1
    chunks.append(f"{count}{current}")
    return "".join(chunks)


def cigar_edit_count(cigar: str) -> int:
    """Total edits implied by a CIGAR (X + I + D columns)."""
    total = 0
    count = ""
    for ch in cigar:
        if ch.isdigit():
            count += ch
        else:
            if ch not in CIGAR_OPS:
                raise SequenceError(f"invalid CIGAR op {ch!r}")
            if ch != "=":
                total += int(count)
            count = ""
    return total
