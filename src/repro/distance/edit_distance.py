"""Edit (Levenshtein) distance: full DP, banded DP, and batched banded DP.

These kernels provide the *ground truth* for every accuracy experiment:
a (read, segment) pair is a true match at threshold ``T`` iff
``edit_distance(segment, read) <= T`` (Section II-B).

Three implementations, all mutually cross-checked in the tests:

* :func:`edit_distance` — full ``O(n*m)`` dynamic program, row-vectorised
  with numpy (the inner insertion scan uses the ``min-accumulate`` trick);
* :func:`banded_edit_distance` — ``O(n*k)`` banded DP, exact whenever the
  true distance is at most the band half-width ``k``;
* :func:`banded_edit_distance_batch` — the banded DP vectorised across
  many (read, segment) pairs at once, which is what makes exhaustive
  ground-truth labelling of a whole dataset tractable in Python.

The batch kernel reports distances **capped at** ``band + 1``: a result
of ``band + 1`` means "greater than ``band``", which is all the
experiments need because they never sweep thresholds beyond the band.
"""

from __future__ import annotations

import numpy as np

from repro.errors import SequenceError, ThresholdError
from repro.genome.sequence import DnaSequence

#: Large sentinel standing in for +infinity inside int32 DP tables.
_INF = np.int32(1 << 20)


def edit_distance(a: DnaSequence, b: DnaSequence) -> int:
    """Exact Levenshtein distance between two sequences (unit costs)."""
    x, y = a.codes, b.codes
    n, m = len(x), len(y)
    if n == 0:
        return m
    if m == 0:
        return n
    # One DP row over y, vectorised; the left-neighbour (insertion)
    # dependency is resolved with the min-accumulate identity
    #   D[j] = j + min_{j' <= j} (tmp[j'] - j').
    offsets = np.arange(m + 1, dtype=np.int32)
    prev = offsets.copy()
    cur = np.empty(m + 1, dtype=np.int32)
    for i in range(1, n + 1):
        substitution = prev[:-1] + (y != x[i - 1])
        cur[0] = i
        cur[1:] = np.minimum(substitution, prev[1:] + 1)
        cur = offsets + np.minimum.accumulate(cur - offsets)
        prev, cur = cur, prev
    return int(prev[m])


def banded_edit_distance(a: DnaSequence, b: DnaSequence, band: int) -> int:
    """Banded Levenshtein distance.

    Exact when the true distance is ``<= band``; returns ``band + 1``
    otherwise (meaning "greater than *band*").  Sequences of different
    lengths are supported as long as ``|len(a) - len(b)| <= band``
    (otherwise the distance trivially exceeds the band).
    """
    if band < 0:
        raise ThresholdError(f"band must be non-negative, got {band}")
    if abs(len(a) - len(b)) > band:
        return band + 1
    if len(a) == len(b):
        result = banded_edit_distance_batch(
            a.codes[None, :], b.codes[None, :], band
        )
        return int(result[0, 0])
    # Unequal lengths are rare in our experiments; fall back to full DP.
    return min(edit_distance(a, b), band + 1)


def banded_edit_distance_batch(segments: np.ndarray, reads: np.ndarray,
                               band: int) -> np.ndarray:
    """Banded edit distance for every (read, segment) pair.

    Parameters
    ----------
    segments:
        ``(M, L)`` uint8 matrix of stored segments.
    reads:
        ``(R, L)`` uint8 matrix of reads (same length ``L``).
    band:
        Band half-width ``k``; distances above it are capped at ``k+1``.

    Returns
    -------
    numpy.ndarray
        ``(R, M)`` int32 matrix ``D`` with ``D[r, s] =
        min(ED(reads[r], segments[s]), band + 1)``.

    Notes
    -----
    The DP runs in anti-band (offset) space: for DP cell ``(i, j)`` the
    offset is ``d = j - i + k`` with ``d in [0, 2k]``.  All pairs advance
    through rows ``i = 1..L`` together; each row costs a handful of
    vectorised operations over a ``(R*M, 2k+1)`` table.
    """
    segments = np.ascontiguousarray(segments, dtype=np.uint8)
    reads = np.ascontiguousarray(reads, dtype=np.uint8)
    if segments.ndim != 2 or reads.ndim != 2:
        raise SequenceError("segments and reads must both be 2-D matrices")
    if segments.shape[1] != reads.shape[1]:
        raise SequenceError(
            f"length mismatch: segments have {segments.shape[1]} columns, "
            f"reads have {reads.shape[1]}"
        )
    if band < 0:
        raise ThresholdError(f"band must be non-negative, got {band}")
    n_segments, length = segments.shape
    n_reads = reads.shape[0]
    k = int(band)
    width = 2 * k + 1
    cap = np.int32(k + 1)

    if length == 0:
        return np.zeros((n_reads, n_segments), dtype=np.int32)

    # Expand to pair-major layout: pair p = r * n_segments + s.
    pair_reads = np.repeat(reads, n_segments, axis=0)        # (P, L)
    pair_segments = np.tile(segments, (n_reads, 1))          # (P, L)
    n_pairs = pair_reads.shape[0]

    # Segments padded with an impossible code so neighbour gathers at the
    # row edges always compare unequal (validity is enforced separately).
    padded = np.full((n_pairs, length + 2 * k), 255, dtype=np.uint8)
    padded[:, k : k + length] = pair_segments

    d_offsets = np.arange(width, dtype=np.int32)

    # Row i = 0: D[0][j] = j.  With offset d = j - i + k, row 0 has
    # j = d - k, so only offsets d >= k are inside the matrix.
    prev = np.full((n_pairs, width), _INF, dtype=np.int32)
    js = d_offsets - k
    valid0 = (js >= 0) & (js <= length)
    prev[:, valid0] = js[valid0][None, :]

    shifted = np.empty_like(prev)
    for i in range(1, length + 1):
        # j for each offset at this row, and which offsets are inside the
        # matrix (0 <= j <= length).
        js = i + d_offsets - k
        inside = (js >= 0) & (js <= length)
        # Substitution term: D[i-1][j-1] + (a[i-1] != b[j-1]).  In offset
        # space the diagonal predecessor shares d.  Gather the segment
        # bases b[j-1] for the whole band: padded columns (j-1) + k =
        # i + d - 1, i.e. the contiguous slice [i-1, i-1+width).
        seg_band = padded[:, i - 1 : i - 1 + width]
        mismatch = (seg_band != pair_reads[:, i - 1][:, None]).astype(np.int32)
        tmp = prev + mismatch
        # Deletion term (up): predecessor at offset d+1.
        shifted[:, :-1] = prev[:, 1:]
        shifted[:, -1] = _INF
        np.minimum(tmp, shifted + 1, out=tmp)
        # Base column j = 0 (only when i <= k): D[i][0] = i.
        if i <= k:
            tmp[:, k - i] = i
        # Kill offsets outside the matrix before the insertion scan.
        tmp[:, ~inside] = _INF
        # Insertion term (left) via min-accumulate along the band.
        tmp -= d_offsets[None, :]
        np.minimum.accumulate(tmp, axis=1, out=tmp)
        tmp += d_offsets[None, :]
        tmp[:, ~inside] = _INF
        prev, shifted = tmp, prev

    result = prev[:, k]  # offset of j == length at i == length
    result = np.minimum(result, cap)
    return result.reshape(n_reads, n_segments)


def edit_distance_matrix(a: DnaSequence, b: DnaSequence) -> np.ndarray:
    """The full ``(len(a)+1, len(b)+1)`` comparison matrix ``M[i, j]``.

    Exposed for the ReSMA baseline (which processes this matrix
    anti-diagonal by anti-diagonal) and for didactic examples; prefer
    :func:`edit_distance` when only the distance is needed.
    """
    x, y = a.codes, b.codes
    n, m = len(x), len(y)
    table = np.zeros((n + 1, m + 1), dtype=np.int32)
    table[:, 0] = np.arange(n + 1)
    table[0, :] = np.arange(m + 1)
    offsets = np.arange(m + 1, dtype=np.int32)
    for i in range(1, n + 1):
        substitution = table[i - 1, :-1] + (y != x[i - 1])
        row = np.empty(m + 1, dtype=np.int32)
        row[0] = i
        row[1:] = np.minimum(substitution, table[i - 1, 1:] + 1)
        table[i] = offsets + np.minimum.accumulate(row - offsets)
    return table
