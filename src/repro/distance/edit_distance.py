"""Edit (Levenshtein) distance: full DP, banded DP, and batched banded DP.

These kernels provide the *ground truth* for every accuracy experiment:
a (read, segment) pair is a true match at threshold ``T`` iff
``edit_distance(segment, read) <= T`` (Section II-B).

Three implementations, all mutually cross-checked in the tests:

* :func:`edit_distance` — full ``O(n*m)`` dynamic program, row-vectorised
  with numpy (the inner insertion scan uses the ``min-accumulate`` trick);
* :func:`banded_edit_distance` — ``O(n*k)`` banded DP, exact whenever the
  true distance is at most the band half-width ``k``;
* :func:`banded_edit_distance_batch` — the banded DP vectorised across
  many (read, segment) pairs at once, which is what makes exhaustive
  ground-truth labelling of a whole dataset tractable in Python.

The batch kernel reports distances **capped at** ``band + 1``: a result
of ``band + 1`` means "greater than ``band``", which is all the
experiments need because they never sweep thresholds beyond the band.

Before the DP runs, two exact lower-bound prefilters prove most pairs
"greater than band" outright: the 1-gram base-composition bound
(:func:`composition_lower_bound`) over the full pair grid, then
Ukkonen's q-gram bound (:func:`qgram_lower_bound`, ``q = 3``) pairwise
over its survivors.  Both are true lower bounds, so the prefiltered
labelling stays exact — property-tested against the unfiltered DP.
"""

from __future__ import annotations

import numpy as np

from repro.errors import SequenceError, ThresholdError
from repro.genome.sequence import DnaSequence

#: Large sentinel standing in for +infinity inside int32 DP tables.
_INF = np.int32(1 << 20)

#: Same sentinel for the int16 banded-batch tables (DP values there
#: never exceed length + band + 1 << 16384, so the headroom is safe).
_INF16 = np.int16(1 << 14)

#: q-gram length for the Ukkonen lower-bound prefilter.  q = 3 keeps
#: the profile table tiny (64 bins) while separating unrelated DNA
#: pairs far better than the 1-gram composition bound.
_QGRAM_Q = 3


def composition_lower_bound(segments: np.ndarray,
                            reads: np.ndarray) -> np.ndarray:
    """Cheap per-pair lower bound on the edit distance.

    A single edit operation changes the base-composition histograms'
    L1 distance by at most 2 (a substitution moves one count down and
    another up; an insertion or deletion moves one count), so
    ``ED(a, b) >= ceil(L1(comp(a), comp(b)) / 2)`` for every pair.
    The composition profiles come from the resolved
    :mod:`repro.kernels` backend (the bitpacked lane counts them from
    its bitplanes; every backend is bit-identical), and the bound
    costs one ``(R, M, n_codes)`` broadcast — nothing next to the
    banded DP — and at Fig.-7 scales it proves >40-80 % of pairs
    "greater than band" before the DP runs.
    """
    from repro.kernels import resolve_backend

    segments = np.asarray(segments, dtype=np.uint8)
    reads = np.asarray(reads, dtype=np.uint8)
    n_codes = int(max(segments.max(initial=0),
                      reads.max(initial=0))) + 1
    backend = resolve_backend(None)
    seg_comp = backend.composition_profiles(segments, n_codes)
    read_comp = backend.composition_profiles(reads, n_codes)
    l1 = np.abs(read_comp[:, None, :] - seg_comp[None, :, :]).sum(axis=2)
    return (l1 + 1) // 2


def qgram_profiles(rows: np.ndarray, q: int = _QGRAM_Q) -> np.ndarray:
    """``(R, 4**q)`` q-gram occurrence profiles of DNA code rows.

    Rows must hold codes below 4 (the DNA alphabet) and be at least
    ``q`` long; callers gate on both (see
    :func:`banded_edit_distance_batch`).
    """
    rows = np.asarray(rows, dtype=np.int64)
    n_rows, length = rows.shape
    n_grams = alphabet_size = 4
    for _ in range(q - 1):
        n_grams *= alphabet_size
    if n_rows == 0:
        return np.zeros((0, n_grams), dtype=np.int32)
    if length < q:
        raise SequenceError(
            f"rows of length {length} have no {q}-grams"
        )
    # Base-4 values of every window, then one global bincount with the
    # row index folded into the high bits.
    values = np.zeros((n_rows, length - q + 1), dtype=np.int64)
    for offset in range(q):
        values = values * alphabet_size + rows[:, offset:length - q + 1
                                               + offset]
    keys = (np.arange(n_rows, dtype=np.int64)[:, None] * n_grams + values)
    counts = np.bincount(keys.ravel(), minlength=n_rows * n_grams)
    return counts.reshape(n_rows, n_grams).astype(np.int32)


def _qgram_bound_from_l1(l1: np.ndarray, q: int) -> np.ndarray:
    """``ceil(L1 / 2q)`` — the bound both q-gram call sites share."""
    return ((l1 + 2 * q - 1) // (2 * q)).astype(np.int32)


def qgram_lower_bound(segments: np.ndarray, reads: np.ndarray,
                      q: int = _QGRAM_Q) -> np.ndarray:
    """Ukkonen's q-gram lower bound on the edit distance, per pair.

    A single edit operation destroys at most ``q`` of a string's
    q-grams and creates at most ``q`` new ones, so the L1 distance
    between two q-gram profiles changes by at most ``2q`` per
    operation: ``ED(a, b) >= ceil(L1(profile(a), profile(b)) / 2q)``.
    Exact (never above the true distance) for any two equal-length
    code rows over the DNA alphabet; with ``q = 1`` this degenerates
    to :func:`composition_lower_bound`.
    """
    seg_prof = qgram_profiles(segments, q)
    read_prof = qgram_profiles(reads, q)
    l1 = np.abs(read_prof[:, None, :].astype(np.int64)
                - seg_prof[None, :, :]).sum(axis=2)
    return _qgram_bound_from_l1(l1, q)


def edit_distance(a: DnaSequence, b: DnaSequence) -> int:
    """Exact Levenshtein distance between two sequences (unit costs)."""
    x, y = a.codes, b.codes
    n, m = len(x), len(y)
    if n == 0:
        return m
    if m == 0:
        return n
    # One DP row over y, vectorised; the left-neighbour (insertion)
    # dependency is resolved with the min-accumulate identity
    #   D[j] = j + min_{j' <= j} (tmp[j'] - j').
    offsets = np.arange(m + 1, dtype=np.int32)
    prev = offsets.copy()
    cur = np.empty(m + 1, dtype=np.int32)
    for i in range(1, n + 1):
        substitution = prev[:-1] + (y != x[i - 1])
        cur[0] = i
        cur[1:] = np.minimum(substitution, prev[1:] + 1)
        cur = offsets + np.minimum.accumulate(cur - offsets)
        prev, cur = cur, prev
    return int(prev[m])


def banded_edit_distance(a: DnaSequence, b: DnaSequence, band: int) -> int:
    """Banded Levenshtein distance.

    Exact when the true distance is ``<= band``; returns ``band + 1``
    otherwise (meaning "greater than *band*").  Sequences of different
    lengths are supported as long as ``|len(a) - len(b)| <= band``
    (otherwise the distance trivially exceeds the band).
    """
    if band < 0:
        raise ThresholdError(f"band must be non-negative, got {band}")
    if abs(len(a) - len(b)) > band:
        return band + 1
    if len(a) == len(b):
        result = banded_edit_distance_batch(
            a.codes[None, :], b.codes[None, :], band
        )
        return int(result[0, 0])
    # Unequal lengths are rare in our experiments; fall back to full DP.
    return min(edit_distance(a, b), band + 1)


def banded_edit_distance_batch(segments: np.ndarray, reads: np.ndarray,
                               band: int) -> np.ndarray:
    """Banded edit distance for every (read, segment) pair.

    Parameters
    ----------
    segments:
        ``(M, L)`` uint8 matrix of stored segments.
    reads:
        ``(R, L)`` uint8 matrix of reads (same length ``L``).
    band:
        Band half-width ``k``; distances above it are capped at ``k+1``.

    Returns
    -------
    numpy.ndarray
        ``(R, M)`` int32 matrix ``D`` with ``D[r, s] =
        min(ED(reads[r], segments[s]), band + 1)``.

    Notes
    -----
    The DP runs in anti-band (offset) space: for DP cell ``(i, j)`` the
    offset is ``d = j - i + k`` with ``d in [0, 2k]``.  All pairs advance
    through rows ``i = 1..L`` together; each row costs a handful of
    vectorised operations over a ``(R*M, 2k+1)`` table.
    """
    segments = np.ascontiguousarray(segments, dtype=np.uint8)
    reads = np.ascontiguousarray(reads, dtype=np.uint8)
    if segments.ndim != 2 or reads.ndim != 2:
        raise SequenceError("segments and reads must both be 2-D matrices")
    if segments.shape[1] != reads.shape[1]:
        raise SequenceError(
            f"length mismatch: segments have {segments.shape[1]} columns, "
            f"reads have {reads.shape[1]}"
        )
    if band < 0:
        raise ThresholdError(f"band must be non-negative, got {band}")
    n_segments, length = segments.shape
    n_reads = reads.shape[0]
    k = int(band)
    width = 2 * k + 1
    cap = np.int32(k + 1)

    if length == 0:
        return np.zeros((n_reads, n_segments), dtype=np.int32)

    # Prefilters: a pair whose cheap lower bound already exceeds the
    # band is "greater than band" by definition — emit the cap without
    # running its DP.  The 1-gram composition bound runs over the full
    # (R, M) grid; the stronger q-gram (Ukkonen) bound then runs
    # pairwise over its survivors only.  At Fig.-7 scales the two
    # together remove most of the pair-major table.
    result = np.full((n_reads, n_segments), cap, dtype=np.int32)
    bound = composition_lower_bound(segments, reads)
    read_idx, seg_idx = np.nonzero(bound <= k)
    if read_idx.size == 0:
        return result
    if (length >= _QGRAM_Q
            and int(max(segments.max(initial=0),
                        reads.max(initial=0))) < 4):
        seg_prof = qgram_profiles(segments)
        read_prof = qgram_profiles(reads)
        l1 = np.abs(read_prof[read_idx].astype(np.int64)
                    - seg_prof[seg_idx]).sum(axis=1)
        survivors = _qgram_bound_from_l1(l1, _QGRAM_Q) <= k
        read_idx = read_idx[survivors]
        seg_idx = seg_idx[survivors]
        if read_idx.size == 0:
            return result

    # Compact pair-major layout over the surviving pairs only.
    pair_reads = reads[read_idx]                             # (P, L)
    pair_segments = segments[seg_idx]                        # (P, L)
    n_pairs = pair_reads.shape[0]

    # Segments padded with an impossible code so neighbour gathers at the
    # row edges always compare unequal (validity is enforced separately).
    padded = np.full((n_pairs, length + 2 * k), 255, dtype=np.uint8)
    padded[:, k : k + length] = pair_segments

    # int16 tables when the DP values fit (they never exceed
    # length + band + 1): the smaller element size roughly halves the
    # memory traffic of the row loop.  Longer sequences fall back to
    # int32 so values can never wrap past the sentinel.
    if length + k + 1 < int(_INF16):
        dp_dtype, dp_inf = np.int16, _INF16
    else:
        dp_dtype, dp_inf = np.int32, _INF
    d_offsets = np.arange(width, dtype=dp_dtype)

    # Row i = 0: D[0][j] = j.  With offset d = j - i + k, row 0 has
    # j = d - k, so only offsets d >= k are inside the matrix.
    prev = np.full((n_pairs, width), dp_inf, dtype=dp_dtype)
    js = d_offsets.astype(np.int32) - k
    valid0 = (js >= 0) & (js <= length)
    prev[:, valid0] = js[valid0][None, :].astype(dp_dtype)

    shifted = np.empty_like(prev)
    for i in range(1, length + 1):
        # j for each offset at this row, and which offsets are inside the
        # matrix (0 <= j <= length).
        js = i + d_offsets.astype(np.int32) - k
        inside = (js >= 0) & (js <= length)
        # Substitution term: D[i-1][j-1] + (a[i-1] != b[j-1]).  In offset
        # space the diagonal predecessor shares d.  Gather the segment
        # bases b[j-1] for the whole band: padded columns (j-1) + k =
        # i + d - 1, i.e. the contiguous slice [i-1, i-1+width).
        seg_band = padded[:, i - 1 : i - 1 + width]
        mismatch = (seg_band != pair_reads[:, i - 1][:, None]).astype(dp_dtype)
        tmp = prev + mismatch
        # Deletion term (up): predecessor at offset d+1.
        shifted[:, :-1] = prev[:, 1:]
        shifted[:, -1] = dp_inf
        np.minimum(tmp, shifted + dp_dtype(1), out=tmp)
        # Base column j = 0 (only when i <= k): D[i][0] = i.
        if i <= k:
            tmp[:, k - i] = i
        # Kill offsets outside the matrix before the insertion scan.
        tmp[:, ~inside] = dp_inf
        # Insertion term (left) via min-accumulate along the band.
        tmp -= d_offsets[None, :]
        np.minimum.accumulate(tmp, axis=1, out=tmp)
        tmp += d_offsets[None, :]
        tmp[:, ~inside] = dp_inf
        prev, shifted = tmp, prev

    # Offset of j == length at i == length; scatter into the
    # prefiltered result grid.
    survivors = np.minimum(prev[:, k].astype(np.int32), cap)
    result[read_idx, seg_idx] = survivors
    return result


def edit_distance_matrix(a: DnaSequence, b: DnaSequence) -> np.ndarray:
    """The full ``(len(a)+1, len(b)+1)`` comparison matrix ``M[i, j]``.

    Exposed for the ReSMA baseline (which processes this matrix
    anti-diagonal by anti-diagonal) and for didactic examples; prefer
    :func:`edit_distance` when only the distance is needed.
    """
    x, y = a.codes, b.codes
    n, m = len(x), len(y)
    table = np.zeros((n + 1, m + 1), dtype=np.int32)
    table[:, 0] = np.arange(n + 1)
    table[0, :] = np.arange(m + 1)
    offsets = np.arange(m + 1, dtype=np.int32)
    for i in range(1, n + 1):
        substitution = table[i - 1, :-1] + (y != x[i - 1])
        row = np.empty(m + 1, dtype=np.int32)
        row[0] = i
        row[1:] = np.minimum(substitution, table[i - 1, 1:] + 1)
        table[i] = offsets + np.minimum.accumulate(row - offsets)
    return table
