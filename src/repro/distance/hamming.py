"""Hamming distance kernels.

Hamming distance (HD) counts positions where two equal-length sequences
differ.  The ASMCap array computes HD natively when the mode-select
signal ``S`` is 0 (the MUX passes only the co-located comparison
``O_C``, Fig. 4(c)); the HDAC strategy compares the HD decision with the
ED* decision.
"""

from __future__ import annotations

import numpy as np

from repro.errors import SequenceError
from repro.genome.sequence import DnaSequence


def hamming_distance(a: DnaSequence, b: DnaSequence) -> int:
    """Hamming distance between two equal-length sequences.

    Raises
    ------
    SequenceError
        If the sequences have different lengths (HD is undefined then).
    """
    if len(a) != len(b):
        raise SequenceError(
            f"Hamming distance needs equal lengths, got {len(a)} and {len(b)}"
        )
    return int(np.count_nonzero(a.codes != b.codes))


def hamming_distance_batch(segments: np.ndarray, read: np.ndarray) -> np.ndarray:
    """Hamming distance of one read against many stored segments.

    Parameters
    ----------
    segments:
        ``(M, N)`` uint8 matrix of stored rows.
    read:
        ``(N,)`` uint8 read codes.

    Returns
    -------
    numpy.ndarray
        ``(M,)`` int array of distances.
    """
    segments = np.asarray(segments)
    read = np.asarray(read)
    if segments.ndim != 2:
        raise SequenceError(f"segments must be 2-D, got shape {segments.shape}")
    if read.ndim != 1 or read.shape[0] != segments.shape[1]:
        raise SequenceError(
            f"read shape {read.shape} incompatible with segments "
            f"{segments.shape}"
        )
    return np.count_nonzero(segments != read[None, :], axis=1)


def hamming_matches(segments: np.ndarray, read: np.ndarray) -> np.ndarray:
    """Boolean per-cell co-located match matrix ``(M, N)``.

    This is the ``O_C`` plane of the ASMCap cell logic: entry ``[i, j]``
    is True when stored base ``j`` of row ``i`` equals read base ``j``.
    """
    segments = np.asarray(segments)
    read = np.asarray(read)
    return segments == read[None, :]
