"""Explicit comparison-matrix (CM) computation with anti-diagonal order.

The CM is the classical ``O(n*m)`` edit-distance dynamic program laid
out as a matrix ``M[i, j]`` (Section II-B).  ReSMA (DAC 2022) maps this
matrix onto RRAM crossbars and exploits the fact that all cells on one
anti-diagonal are independent, processing the matrix wavefront by
wavefront.  The ReSMA baseline's cost model therefore needs, besides the
distance itself, the *work-shape statistics* of the traversal: number of
wavefronts, cells per wavefront, and total cell updates.

:class:`AntiDiagonalTraversal` produces exactly those statistics while
computing the true matrix (functionally verified against
:func:`repro.distance.edit_distance.edit_distance`).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.genome.sequence import DnaSequence


@dataclass
class TraversalStats:
    """Work-shape statistics of one anti-diagonal CM traversal."""

    n_wavefronts: int = 0
    total_cell_updates: int = 0
    max_wavefront_width: int = 0
    wavefront_widths: list[int] = field(default_factory=list)


@dataclass
class AntiDiagonalTraversal:
    """Anti-diagonal evaluation of the comparison matrix.

    Cells ``(i, j)`` with constant ``i + j`` form one wavefront; each
    wavefront depends only on the previous two, which is the parallelism
    ReSMA's crossbars exploit.

    Attributes
    ----------
    matrix:
        The completed ``(n+1, m+1)`` DP matrix.
    stats:
        Work statistics consumed by the ReSMA cost model.
    """

    matrix: np.ndarray
    stats: TraversalStats

    @classmethod
    def run(cls, a: DnaSequence, b: DnaSequence) -> "AntiDiagonalTraversal":
        """Fill the CM wavefront by wavefront."""
        x, y = a.codes, b.codes
        n, m = len(x), len(y)
        table = np.full((n + 1, m + 1), 0, dtype=np.int32)
        table[:, 0] = np.arange(n + 1)
        table[0, :] = np.arange(m + 1)
        stats = TraversalStats()

        # Wavefront s covers interior cells (i, j >= 1) with i + j == s.
        for s in range(2, n + m + 1):
            i_low = max(1, s - m)
            i_high = min(n, s - 1)
            if i_low > i_high:
                continue
            i_idx = np.arange(i_low, i_high + 1)
            j_idx = s - i_idx
            mismatch = (x[i_idx - 1] != y[j_idx - 1]).astype(np.int32)
            diagonal = table[i_idx - 1, j_idx - 1] + mismatch
            up = table[i_idx - 1, j_idx] + 1
            left = table[i_idx, j_idx - 1] + 1
            table[i_idx, j_idx] = np.minimum(diagonal, np.minimum(up, left))
            width = int(i_idx.size)
            stats.n_wavefronts += 1
            stats.total_cell_updates += width
            stats.max_wavefront_width = max(stats.max_wavefront_width, width)
            stats.wavefront_widths.append(width)
        return cls(matrix=table, stats=stats)

    @property
    def distance(self) -> int:
        """The edit distance in the bottom-right corner."""
        return int(self.matrix[-1, -1])


def comparison_matrix_distance(a: DnaSequence, b: DnaSequence) -> int:
    """Edit distance via the anti-diagonal CM (convenience wrapper)."""
    return AntiDiagonalTraversal.run(a, b).distance
