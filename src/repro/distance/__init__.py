"""String-distance kernels: ground truth (ED), HD, and the ED* estimate.

* :mod:`repro.distance.hamming` — Hamming distance (CAM HD mode);
* :mod:`repro.distance.edit_distance` — full / banded / batched DP;
* :mod:`repro.distance.myers` — bit-parallel oracle;
* :mod:`repro.distance.comparison_matrix` — anti-diagonal CM (ReSMA);
* :mod:`repro.distance.ed_star` — the EDAM/ASMCap neighbour-tolerant
  mismatch count.
"""

from repro.distance.alignment import Alignment, align, cigar_edit_count
from repro.distance.comparison_matrix import (
    AntiDiagonalTraversal,
    TraversalStats,
    comparison_matrix_distance,
)
from repro.distance.ed_star import (
    ed_star,
    ed_star_batch,
    ed_star_counts_batch,
    match_planes,
    match_planes_batch,
    mismatch_counts_all_reads,
)
from repro.distance.edit_distance import (
    banded_edit_distance,
    banded_edit_distance_batch,
    edit_distance,
    edit_distance_matrix,
)
from repro.distance.hamming import (
    hamming_distance,
    hamming_distance_batch,
    hamming_matches,
)
from repro.distance.landau_vishkin import landau_vishkin, lv_within
from repro.distance.myers import myers_distance_to_all, myers_edit_distance
from repro.distance.semiglobal import (
    SemiglobalHit,
    best_semiglobal_hit,
    occurrences_within,
    semiglobal_distances,
)

__all__ = [
    "Alignment",
    "AntiDiagonalTraversal",
    "align",
    "cigar_edit_count",
    "SemiglobalHit",
    "TraversalStats",
    "best_semiglobal_hit",
    "landau_vishkin",
    "lv_within",
    "occurrences_within",
    "semiglobal_distances",
    "banded_edit_distance",
    "banded_edit_distance_batch",
    "comparison_matrix_distance",
    "ed_star",
    "ed_star_batch",
    "ed_star_counts_batch",
    "edit_distance",
    "edit_distance_matrix",
    "hamming_distance",
    "hamming_distance_batch",
    "hamming_matches",
    "match_planes",
    "match_planes_batch",
    "mismatch_counts_all_reads",
    "myers_distance_to_all",
    "myers_edit_distance",
]
