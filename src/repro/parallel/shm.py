"""Shared-memory transport for sealed stored references.

The process engine's zero-copy substrate: a sealed
:class:`~repro.cam.array.StoredReference` — the SRAM plane plus the
one-pass :class:`~repro.kernels.EncodedReference` planes — is written
**once** into a ``multiprocessing.shared_memory`` segment by
:func:`share_stored_reference`, and every worker process maps the same
physical pages back into a sealed reference with
:func:`attach_stored_reference`.  Workers therefore borrow megabytes
of encoded reference without pickling them per task, and without ever
re-running an encoding pass (``n_encodes`` of an attached reference
stays 0 — the worker-side encode-once evidence).

**Segment layout.**  A versioned, checksummed header in front of the
64-byte-aligned payload arrays::

    magic  b"ASMCAPSM"                       8 bytes
    version, meta_length                     2 x uint32 (little-endian)
    meta_crc32, payload_crc32                2 x uint32
    payload_length                           uint64
    meta JSON                                meta_length bytes
    ... 64-byte alignment padding ...
    payload arrays (fixed field order of
    repro.kernels.ENCODED_REFERENCE_FIELDS)  payload_length bytes

The meta JSON records each array's dtype/shape/offset.  ``attach``
verifies the magic, the version, and both CRC32s before building any
view, so a truncated, foreign or torn segment fails loudly
(:class:`~repro.errors.CamConfigError`) instead of producing silently
wrong counts.

**Lifecycle.**  :func:`share_stored_reference` returns a
:class:`SharedStoredReference` owner: ``close()`` (idempotent, also
the context-manager exit) unmaps *and unlinks* the segment, and a
``weakref.finalize`` guard does the same for abandoned owners — at
garbage collection or interpreter exit — so the test suite and the
benchmarks finish without ``resource_tracker`` leak warnings.
Attachments opt out of the resource tracker (the owner's unlink is
authoritative; Python < 3.13 would otherwise double-track every
worker's attachment and warn at worker exit).
"""

from __future__ import annotations

import weakref
from dataclasses import dataclass
from multiprocessing import shared_memory

from repro.cam.array import StoredReference
from repro.errors import CamConfigError
from repro.faults.hooks import fire as _fire_fault
from repro.kernels import (
    ENCODED_REFERENCE_FIELDS,
    encoded_reference_arrays,
    encoded_reference_from_arrays,
)
# Layout re-exports: tests and layout-aware callers read the segment
# geometry through this module's historical names.
from repro.parallel.header import ALIGN as _ALIGN  # noqa: F401
from repro.parallel.header import HEADER as _HEADER  # noqa: F401
from repro.parallel.header import aligned as _aligned  # noqa: F401
from repro.parallel.header import (
    open_container,
    plan_layout,
    seal_header,
    write_payload,
)

__all__ = [
    "SHM_MAGIC",
    "SHM_VERSION",
    "SharedReferenceHandle",
    "SharedStoredReference",
    "AttachedReference",
    "attach_stored_reference",
    "share_stored_reference",
]

#: Leading magic bytes of every shared-reference segment.  The layout
#: behind it is the shared container codec of
#: :mod:`repro.parallel.header` (``_HEADER`` / ``_ALIGN`` /
#: ``_aligned`` re-export it for layout-aware callers and tests).
SHM_MAGIC = b"ASMCAPSM"

#: Header format version; bumped on any layout change so an attach
#: against a stale writer fails loudly.
SHM_VERSION = 1


@dataclass(frozen=True)
class SharedReferenceHandle:
    """A picklable ticket for one shared reference segment.

    Everything else an attach needs (geometry, dtypes, offsets,
    checksums) lives in the segment's own header, so the ticket a
    coordinator sends to its workers is just the segment name.
    """

    name: str


class SharedStoredReference:
    """Owner of one shared-memory copy of a sealed reference.

    Created by :func:`share_stored_reference`; holds the segment until
    :meth:`close` (or the finalize guard) unlinks it.  Workers attach
    via :attr:`handle`.
    """

    def __init__(self, shm: shared_memory.SharedMemory):
        self._shm: "shared_memory.SharedMemory | None" = shm
        self._finalizer = weakref.finalize(
            self, _destroy_segment, shm
        )

    @property
    def handle(self) -> SharedReferenceHandle:
        """The picklable attach ticket for this segment."""
        if self._shm is None:
            raise CamConfigError(
                "this shared reference has been closed (unlinked)"
            )
        return SharedReferenceHandle(name=self._shm.name)

    @property
    def name(self) -> str:
        """The shared-memory segment name (None-safe via handle)."""
        return self.handle.name

    @property
    def nbytes(self) -> int:
        """Allocated segment size in bytes."""
        if self._shm is None:
            return 0
        return self._shm.size

    @property
    def closed(self) -> bool:
        return self._shm is None

    def close(self) -> None:
        """Unmap and unlink the segment (idempotent)."""
        if self._shm is None:
            return
        self._finalizer.detach()
        _destroy_segment(self._shm)
        self._shm = None

    def __enter__(self) -> "SharedStoredReference":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()


def _destroy_segment(shm: shared_memory.SharedMemory) -> None:
    """Unmap + unlink, tolerating an already-unlinked segment."""
    try:
        shm.close()
    except OSError:  # pragma: no cover - platform-specific teardown
        pass
    try:
        shm.unlink()
    except FileNotFoundError:  # pragma: no cover - raced another unlink
        pass


def share_stored_reference(
        reference: StoredReference) -> SharedStoredReference:
    """Copy a sealed reference's payload into a shared-memory segment.

    One copy, at share time — every worker that attaches afterwards
    maps the same pages read-only instead of receiving pickled arrays
    per task.  Requires a **sealed** reference (the payload must be
    immutable once other processes can map it).
    """
    if not reference.sealed:
        raise CamConfigError(
            "only a sealed StoredReference can be shared across "
            "processes (seal() or StoredReference.encode(...) first)"
        )
    arrays = encoded_reference_arrays(reference.encoded())
    layout = plan_layout(arrays)
    shm = shared_memory.SharedMemory(create=True,
                                     size=max(1, layout.total))
    try:
        # The segment is zero-initialised, so the payload CRC the
        # codec computes covers deterministic alignment padding.
        write_payload(shm.buf, layout, arrays)
        seal_header(shm.buf, layout, magic=SHM_MAGIC,
                    version=SHM_VERSION)
        # Chaos hook: corruption injected here (after the seal) is
        # covered by the already-computed CRCs, so every later attach
        # fails loudly — the parent-side stand-in for a torn segment.
        _fire_fault("parallel.shm.share", buf=shm.buf)
    except BaseException:
        _destroy_segment(shm)
        raise
    return SharedStoredReference(shm)


def _attach_untracked(name: str) -> shared_memory.SharedMemory:
    """Open an existing segment without adding tracker obligations.

    The sharing process owns unlink responsibility.  On Python 3.13+
    the ``track=False`` keyword expresses that directly.  Older
    Pythons auto-register every attach — but our attachers (the spawn
    workers, same-process tests) share the owner's resource-tracker
    process, whose per-name registry deduplicates, so the attach adds
    no entry and the owner's eventual ``unlink()`` balances the books
    exactly once.  Explicitly unregistering here would strip the
    owner's entry instead (and the later unlink would log a tracker
    ``KeyError``), so we deliberately leave the registration alone.
    """
    try:
        return shared_memory.SharedMemory(name=name, track=False)
    except TypeError:
        return shared_memory.SharedMemory(name=name)


class AttachedReference:
    """A worker-side view of one shared reference segment.

    :attr:`reference` is a sealed :class:`StoredReference` whose
    arrays are zero-copy views over the mapped segment; the attachment
    keeps the mapping alive and :meth:`close` drops it (the views die
    with it — only call once the reference is no longer used).
    Closing never unlinks: the sharing owner does that.
    """

    def __init__(self, shm: shared_memory.SharedMemory,
                 reference: StoredReference):
        self._shm: "shared_memory.SharedMemory | None" = shm
        self._reference = reference

    @property
    def reference(self) -> StoredReference:
        if self._shm is None:
            raise CamConfigError("this attachment has been closed")
        return self._reference

    @property
    def closed(self) -> bool:
        return self._shm is None

    def close(self) -> None:
        """Unmap the segment (idempotent; does **not** unlink)."""
        if self._shm is None:
            return
        self._reference = None
        shm, self._shm = self._shm, None
        try:
            shm.close()
        except (OSError, BufferError):  # pragma: no cover - live views
            pass

    def __enter__(self) -> "AttachedReference":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()


def attach_stored_reference(
        handle: "SharedReferenceHandle | str") -> AttachedReference:
    """Map a shared segment back into a sealed stored reference.

    Validates the versioned header (magic, version, meta CRC32,
    payload CRC32) before building any view; every payload array is a
    read-only, zero-copy view over the mapped buffer, and the sealed
    reference is rebuilt without an encoding pass
    (:meth:`~repro.cam.array.StoredReference.adopt_encoded`).
    Raises :class:`~repro.errors.CamConfigError` on any header or
    checksum mismatch, and on unknown segment names.
    """
    name = handle.name if isinstance(handle, SharedReferenceHandle) \
        else str(handle)
    try:
        shm = _attach_untracked(name)
    except FileNotFoundError as exc:
        raise CamConfigError(
            f"no shared reference segment named {name!r} (was the "
            f"owner closed, unlinking it?)"
        ) from exc
    try:
        _fire_fault("parallel.shm.attach", buf=shm.buf)
        arrays = open_container(
            shm.buf, magic=SHM_MAGIC, version=SHM_VERSION,
            describe=f"shared segment {name!r}",
            error=CamConfigError,
            expected_fields=ENCODED_REFERENCE_FIELDS,
        )
        reference = StoredReference.adopt_encoded(
            encoded_reference_from_arrays(arrays)
        )
    except BaseException:
        try:
            shm.close()
        except (OSError, BufferError):  # pragma: no cover
            pass
        raise
    return AttachedReference(shm, reference)
