"""Shared-memory transport for sealed stored references.

The process engine's zero-copy substrate: a sealed
:class:`~repro.cam.array.StoredReference` — the SRAM plane plus the
one-pass :class:`~repro.kernels.EncodedReference` planes — is written
**once** into a ``multiprocessing.shared_memory`` segment by
:func:`share_stored_reference`, and every worker process maps the same
physical pages back into a sealed reference with
:func:`attach_stored_reference`.  Workers therefore borrow megabytes
of encoded reference without pickling them per task, and without ever
re-running an encoding pass (``n_encodes`` of an attached reference
stays 0 — the worker-side encode-once evidence).

**Segment layout.**  A versioned, checksummed header in front of the
64-byte-aligned payload arrays::

    magic  b"ASMCAPSM"                       8 bytes
    version, meta_length                     2 x uint32 (little-endian)
    meta_crc32, payload_crc32                2 x uint32
    payload_length                           uint64
    meta JSON                                meta_length bytes
    ... 64-byte alignment padding ...
    payload arrays (fixed field order of
    repro.kernels.ENCODED_REFERENCE_FIELDS)  payload_length bytes

The meta JSON records each array's dtype/shape/offset.  ``attach``
verifies the magic, the version, and both CRC32s before building any
view, so a truncated, foreign or torn segment fails loudly
(:class:`~repro.errors.CamConfigError`) instead of producing silently
wrong counts.

**Lifecycle.**  :func:`share_stored_reference` returns a
:class:`SharedStoredReference` owner: ``close()`` (idempotent, also
the context-manager exit) unmaps *and unlinks* the segment, and a
``weakref.finalize`` guard does the same for abandoned owners — at
garbage collection or interpreter exit — so the test suite and the
benchmarks finish without ``resource_tracker`` leak warnings.
Attachments opt out of the resource tracker (the owner's unlink is
authoritative; Python < 3.13 would otherwise double-track every
worker's attachment and warn at worker exit).
"""

from __future__ import annotations

import json
import struct
import weakref
import zlib
from dataclasses import dataclass
from multiprocessing import shared_memory

import numpy as np

from repro.cam.array import StoredReference
from repro.errors import CamConfigError
from repro.kernels import (
    ENCODED_REFERENCE_FIELDS,
    encoded_reference_arrays,
    encoded_reference_from_arrays,
)

__all__ = [
    "SHM_MAGIC",
    "SHM_VERSION",
    "SharedReferenceHandle",
    "SharedStoredReference",
    "AttachedReference",
    "attach_stored_reference",
    "share_stored_reference",
]

#: Leading magic bytes of every shared-reference segment.
SHM_MAGIC = b"ASMCAPSM"

#: Header format version; bumped on any layout change so an attach
#: against a stale writer fails loudly.
SHM_VERSION = 1

#: ``magic | version | meta_length | meta_crc32 | payload_crc32 |
#: payload_length`` — little-endian, fixed width.
_HEADER = struct.Struct("<8sIIIIQ")

#: Payload arrays start on this alignment (numpy views over uint64
#: planes need 8; 64 keeps rows cache-line aligned).
_ALIGN = 64

def _aligned(offset: int) -> int:
    return (offset + _ALIGN - 1) // _ALIGN * _ALIGN


@dataclass(frozen=True)
class SharedReferenceHandle:
    """A picklable ticket for one shared reference segment.

    Everything else an attach needs (geometry, dtypes, offsets,
    checksums) lives in the segment's own header, so the ticket a
    coordinator sends to its workers is just the segment name.
    """

    name: str


class SharedStoredReference:
    """Owner of one shared-memory copy of a sealed reference.

    Created by :func:`share_stored_reference`; holds the segment until
    :meth:`close` (or the finalize guard) unlinks it.  Workers attach
    via :attr:`handle`.
    """

    def __init__(self, shm: shared_memory.SharedMemory):
        self._shm: "shared_memory.SharedMemory | None" = shm
        self._finalizer = weakref.finalize(
            self, _destroy_segment, shm
        )

    @property
    def handle(self) -> SharedReferenceHandle:
        """The picklable attach ticket for this segment."""
        if self._shm is None:
            raise CamConfigError(
                "this shared reference has been closed (unlinked)"
            )
        return SharedReferenceHandle(name=self._shm.name)

    @property
    def name(self) -> str:
        """The shared-memory segment name (None-safe via handle)."""
        return self.handle.name

    @property
    def nbytes(self) -> int:
        """Allocated segment size in bytes."""
        if self._shm is None:
            return 0
        return self._shm.size

    @property
    def closed(self) -> bool:
        return self._shm is None

    def close(self) -> None:
        """Unmap and unlink the segment (idempotent)."""
        if self._shm is None:
            return
        self._finalizer.detach()
        _destroy_segment(self._shm)
        self._shm = None

    def __enter__(self) -> "SharedStoredReference":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()


def _destroy_segment(shm: shared_memory.SharedMemory) -> None:
    """Unmap + unlink, tolerating an already-unlinked segment."""
    try:
        shm.close()
    except OSError:  # pragma: no cover - platform-specific teardown
        pass
    try:
        shm.unlink()
    except FileNotFoundError:  # pragma: no cover - raced another unlink
        pass


def share_stored_reference(
        reference: StoredReference) -> SharedStoredReference:
    """Copy a sealed reference's payload into a shared-memory segment.

    One copy, at share time — every worker that attaches afterwards
    maps the same pages read-only instead of receiving pickled arrays
    per task.  Requires a **sealed** reference (the payload must be
    immutable once other processes can map it).
    """
    if not reference.sealed:
        raise CamConfigError(
            "only a sealed StoredReference can be shared across "
            "processes (seal() or StoredReference.encode(...) first)"
        )
    arrays = encoded_reference_arrays(reference.encoded())
    meta_arrays = []
    offset = 0
    for name, array in arrays:
        array = np.ascontiguousarray(array)
        offset = _aligned(offset)
        meta_arrays.append({
            "name": name,
            "dtype": array.dtype.str,
            "shape": list(array.shape),
            "offset": offset,
            "nbytes": int(array.nbytes),
        })
        offset += array.nbytes
    payload_length = offset
    meta = json.dumps({"arrays": meta_arrays}).encode("ascii")

    payload_start = _aligned(_HEADER.size + len(meta))
    total = payload_start + payload_length
    shm = shared_memory.SharedMemory(create=True, size=max(1, total))
    try:
        buf = shm.buf
        for spec, (_, array) in zip(meta_arrays, arrays):
            view = np.ndarray(array.shape, dtype=array.dtype, buffer=buf,
                              offset=payload_start + spec["offset"])
            view[...] = array
        # One CRC over the whole payload region (alignment padding
        # included — the segment is zero-initialised), matching how
        # the attach side verifies it.
        payload_crc = zlib.crc32(
            buf[payload_start:payload_start + payload_length]
        )
        buf[:_HEADER.size] = _HEADER.pack(
            SHM_MAGIC, SHM_VERSION, len(meta),
            zlib.crc32(meta), payload_crc, payload_length,
        )
        buf[_HEADER.size:_HEADER.size + len(meta)] = meta
    except BaseException:
        _destroy_segment(shm)
        raise
    return SharedStoredReference(shm)


def _attach_untracked(name: str) -> shared_memory.SharedMemory:
    """Open an existing segment without adding tracker obligations.

    The sharing process owns unlink responsibility.  On Python 3.13+
    the ``track=False`` keyword expresses that directly.  Older
    Pythons auto-register every attach — but our attachers (the spawn
    workers, same-process tests) share the owner's resource-tracker
    process, whose per-name registry deduplicates, so the attach adds
    no entry and the owner's eventual ``unlink()`` balances the books
    exactly once.  Explicitly unregistering here would strip the
    owner's entry instead (and the later unlink would log a tracker
    ``KeyError``), so we deliberately leave the registration alone.
    """
    try:
        return shared_memory.SharedMemory(name=name, track=False)
    except TypeError:
        return shared_memory.SharedMemory(name=name)


class AttachedReference:
    """A worker-side view of one shared reference segment.

    :attr:`reference` is a sealed :class:`StoredReference` whose
    arrays are zero-copy views over the mapped segment; the attachment
    keeps the mapping alive and :meth:`close` drops it (the views die
    with it — only call once the reference is no longer used).
    Closing never unlinks: the sharing owner does that.
    """

    def __init__(self, shm: shared_memory.SharedMemory,
                 reference: StoredReference):
        self._shm: "shared_memory.SharedMemory | None" = shm
        self._reference = reference

    @property
    def reference(self) -> StoredReference:
        if self._shm is None:
            raise CamConfigError("this attachment has been closed")
        return self._reference

    @property
    def closed(self) -> bool:
        return self._shm is None

    def close(self) -> None:
        """Unmap the segment (idempotent; does **not** unlink)."""
        if self._shm is None:
            return
        self._reference = None
        shm, self._shm = self._shm, None
        try:
            shm.close()
        except (OSError, BufferError):  # pragma: no cover - live views
            pass

    def __enter__(self) -> "AttachedReference":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()


def attach_stored_reference(
        handle: "SharedReferenceHandle | str") -> AttachedReference:
    """Map a shared segment back into a sealed stored reference.

    Validates the versioned header (magic, version, meta CRC32,
    payload CRC32) before building any view; every payload array is a
    read-only, zero-copy view over the mapped buffer, and the sealed
    reference is rebuilt without an encoding pass
    (:meth:`~repro.cam.array.StoredReference.adopt_encoded`).
    Raises :class:`~repro.errors.CamConfigError` on any header or
    checksum mismatch, and on unknown segment names.
    """
    name = handle.name if isinstance(handle, SharedReferenceHandle) \
        else str(handle)
    try:
        shm = _attach_untracked(name)
    except FileNotFoundError as exc:
        raise CamConfigError(
            f"no shared reference segment named {name!r} (was the "
            f"owner closed, unlinking it?)"
        ) from exc
    try:
        buf = shm.buf
        if len(buf) < _HEADER.size:
            raise CamConfigError(
                f"shared segment {name!r} is smaller than a header"
            )
        magic, version, meta_length, meta_crc, payload_crc, \
            payload_length = _HEADER.unpack_from(buf, 0)
        if magic != SHM_MAGIC:
            raise CamConfigError(
                f"shared segment {name!r} is not an ASMCap reference "
                f"(bad magic {magic!r})"
            )
        if version != SHM_VERSION:
            raise CamConfigError(
                f"shared segment {name!r} has header version {version}; "
                f"this build reads version {SHM_VERSION}"
            )
        meta_end = _HEADER.size + meta_length
        payload_start = _aligned(meta_end)
        if len(buf) < payload_start + payload_length:
            raise CamConfigError(
                f"shared segment {name!r} is truncated "
                f"({len(buf)} bytes, header promises "
                f"{payload_start + payload_length})"
            )
        meta_bytes = bytes(buf[_HEADER.size:meta_end])
        if zlib.crc32(meta_bytes) != meta_crc:
            raise CamConfigError(
                f"shared segment {name!r} failed the meta checksum"
            )
        if zlib.crc32(buf[payload_start:payload_start + payload_length]) \
                != payload_crc:
            raise CamConfigError(
                f"shared segment {name!r} failed the payload checksum"
            )
        meta = json.loads(meta_bytes.decode("ascii"))
        arrays: "dict[str, np.ndarray]" = {}
        for spec in meta["arrays"]:
            view = np.ndarray(
                tuple(spec["shape"]), dtype=np.dtype(spec["dtype"]),
                buffer=buf, offset=payload_start + spec["offset"],
            )
            view.setflags(write=False)
            arrays[spec["name"]] = view
        if tuple(arrays) != ENCODED_REFERENCE_FIELDS:
            raise CamConfigError(
                f"shared segment {name!r} carries arrays "
                f"{tuple(arrays)}, expected {ENCODED_REFERENCE_FIELDS}"
            )
        reference = StoredReference.adopt_encoded(
            encoded_reference_from_arrays(arrays)
        )
    except BaseException:
        try:
            shm.close()
        except (OSError, BufferError):  # pragma: no cover
            pass
        raise
    return AttachedReference(shm, reference)
