"""repro.parallel — process-parallel sharded execution substrate.

The process engine behind ``engine="process"`` on
:class:`~repro.core.pipeline.ShardedReadMappingPipeline` (and
``shard_engine=`` at the service layer), in three layers:

* :mod:`repro.parallel.shm` — sealed
  :class:`~repro.cam.array.StoredReference` payloads in
  ``multiprocessing.shared_memory`` segments with a versioned,
  checksummed header; zero-copy attach, owner-side unlink, leak guard;
* :mod:`repro.parallel.worker` — the long-lived spawned worker: attach
  every shard once, then run self-contained
  :class:`~repro.parallel.worker.ShardTask` items (fresh keyed matcher
  per task, backend resolved *by name* in the worker) and return
  outcomes plus compacted :class:`~repro.parallel.worker.LedgerSummary`
  records;
* :mod:`repro.parallel.engine` —
  :class:`~repro.parallel.engine.ProcessShardEngine`, the coordinator:
  share once, spawn once, queue per chunk, detect dead workers, clean
  up shared memory unconditionally.

**Binding invariant.**  For any worker count and any scheduling, the
process engine's decisions, per-read costs and reports are
bit-identical to the thread engine's (and hence to the scalar keyed
path) — every random draw is a pure function of
``(seed, stream tag, query key, pass tag)``, tasks are cut at the
pipeline's exact chunk boundaries, and the merge runs in the pipeline,
in deterministic task order.  DESIGN.md ("Process-safety contract")
states the rules; ``tests/parallel`` enforces them with exact
equality.
"""

from repro.parallel.engine import ProcessShardEngine
from repro.parallel.shm import (
    SHM_MAGIC,
    SHM_VERSION,
    AttachedReference,
    SharedReferenceHandle,
    SharedStoredReference,
    attach_stored_reference,
    share_stored_reference,
)
from repro.parallel.worker import LedgerSummary, ShardTask, worker_main

__all__ = [
    "AttachedReference",
    "LedgerSummary",
    "ProcessShardEngine",
    "SHM_MAGIC",
    "SHM_VERSION",
    "ShardTask",
    "SharedReferenceHandle",
    "SharedStoredReference",
    "attach_stored_reference",
    "share_stored_reference",
    "worker_main",
]
