"""The process-engine coordinator: spawn once, queue tasks, merge later.

:class:`ProcessShardEngine` owns the process side of the sharded
fan-out (``engine="process"`` on
:class:`~repro.core.pipeline.ShardedReadMappingPipeline`):

* **share once, or not at all** — a sealed shard reference is copied
  into shared memory exactly once
  (:func:`~repro.parallel.shm.share_stored_reference`); a shard whose
  :attr:`~repro.cam.array.StoredReference.source` is an on-disk
  :class:`~repro.refstore.format.FileReferenceHandle` skips even that
  copy — workers re-open the store file's row range themselves (the
  page cache shares the physical pages), and :attr:`shared_nbytes`
  stays 0;
* **spawn once** — long-lived workers (``spawn`` context, so nothing
  is inherited by fork — backends re-resolve by name in the child)
  attach the shards at startup and handshake ``ready``;
* **queue per chunk** — :meth:`run_tasks` feeds self-contained
  :class:`~repro.parallel.worker.ShardTask` items through one shared
  task queue (idle workers steal work) and collects the results by
  task id, so *scheduling order never matters* — the caller reassembles
  results in its own deterministic task order;
* **fail loudly** — a worker that dies mid-run (OOM kill, signal)
  surfaces as a :class:`~repro.errors.ServiceError` naming the worker
  and its exit code, never as a hang on an empty queue; the engine is
  then *broken* and refuses further work until rebuilt;
* **clean up always** — :meth:`close` (idempotent, also the context
  manager exit) sends shutdown sentinels, joins the workers, and
  unlinks every shared segment; a ``weakref.finalize`` guard does the
  same for abandoned engines at garbage collection or interpreter
  exit, so no run leaks ``/dev/shm`` segments or worker processes.

The engine is deliberately *policy-free*: it neither chunks work nor
merges outcomes — the pipeline owns both, which is how the thread and
process engines share one deterministic merge (and hence the
bit-identity contract).
"""

from __future__ import annotations

import multiprocessing
import queue as queue_module
import threading
import weakref
from typing import Sequence

from repro.cam.array import StoredReference
from repro.errors import CamConfigError, ServiceError
from repro.faults.hooks import fire as _fire_fault
from repro.parallel.shm import share_stored_reference
from repro.parallel.worker import LedgerSummary, ShardTask, worker_main

__all__ = ["ProcessShardEngine"]

#: Seconds between result-queue polls; each timeout re-checks worker
#: liveness so a dead worker becomes an error, not a hang.
_POLL_SECONDS = 0.2

#: Seconds a closing engine waits for a worker to exit after its
#: shutdown sentinel before terminating it.
_JOIN_SECONDS = 5.0


def _cleanup(workers: list, owners: list) -> None:
    """Last-resort teardown shared by close() and the finalize guard.

    Mutates the lists in place so running it twice is a no-op; safe at
    interpreter exit (touches no queues — daemon workers die with the
    parent anyway, the segments are what must not leak).
    """
    while workers:
        process = workers.pop()
        if process.is_alive():
            process.terminate()
            process.join(timeout=_JOIN_SECONDS)
    while owners:
        owners.pop().close()


class ProcessShardEngine:
    """A pool of spawned shard workers over shared-memory references.

    Parameters
    ----------
    shards:
        Sealed per-shard :class:`~repro.cam.array.StoredReference`
        objects, in shard order (the same tuple the pipeline's
        matchers are built over).
    domain / noisy:
        Array configuration every worker-side matcher uses (the
        per-task seed/config/backend travel in the tasks themselves,
        which is what lets sessions with different settings share one
        engine).
    n_workers:
        Worker processes to spawn (the pipeline passes its
        ``max_workers`` knob).
    """

    def __init__(self, shards: Sequence[StoredReference], *,
                 domain: str = "charge", noisy: bool = True,
                 n_workers: int = 1):
        if not shards:
            raise CamConfigError(
                "the process engine needs at least one shard reference"
            )
        for shard in shards:
            if not shard.sealed:
                raise CamConfigError(
                    "every shard reference must be sealed before it "
                    "can be shared across processes"
                )
        if int(n_workers) < 1:
            raise CamConfigError(
                f"n_workers must be positive, got {n_workers}"
            )
        self._shards = tuple(shards)
        self._domain = domain
        self._noisy = bool(noisy)
        self._n_workers = int(n_workers)
        self._ctx = multiprocessing.get_context("spawn")
        # Mutable lists shared with the finalize guard (see _cleanup).
        self._workers: list = []
        self._owners: list = []
        self._task_queue = None
        self._result_queue = None
        self._started = False
        self._closed = False
        self._broken: "str | None" = None
        self._next_task_id = 0
        # One shared engine may serve many sessions (the frontend hands
        # every session pipeline the same pool); serialise whole
        # run_tasks calls so concurrent dispatch threads never
        # interleave on the single result queue.
        self._lock = threading.RLock()
        self._worker_backends: "dict[int, str]" = {}
        self._worker_encodes: "dict[int, int]" = {}
        self._finalizer = weakref.finalize(
            self, _cleanup, self._workers, self._owners
        )

    # -- introspection ------------------------------------------------------

    @property
    def n_shards(self) -> int:
        return len(self._shards)

    @property
    def n_workers(self) -> int:
        return self._n_workers

    @property
    def started(self) -> bool:
        return self._started

    @property
    def closed(self) -> bool:
        return self._closed

    @property
    def broken(self) -> bool:
        """Whether a worker death poisoned this engine (rebuild it)."""
        return self._broken is not None

    @property
    def shared_nbytes(self) -> int:
        """Total bytes of shared-memory reference payload (0 before
        the lazy start, and 0 *forever* when every shard is
        file-backed — the zero-copy-boot evidence)."""
        return sum(owner.nbytes for owner in self._owners)

    def worker_pids(self) -> "tuple[int, ...]":
        """PIDs of the live worker pool (worker order)."""
        return tuple(process.pid for process in self._workers)

    def worker_backends(self) -> "tuple[str, ...]":
        """Each worker's *default* kernel-backend resolution — what a
        ``backend=None`` task runs on, resolved by name inside the
        worker (env var > that process's autotune)."""
        return tuple(self._worker_backends[i]
                     for i in sorted(self._worker_backends))

    def worker_encode_counts(self) -> "tuple[int, ...]":
        """Latest reported encode-pass totals per worker.

        All zeros is the encode-once evidence: attached references
        never re-encode (the benchmark and tests assert this).
        """
        return tuple(self._worker_encodes[i]
                     for i in sorted(self._worker_encodes))

    # -- lifecycle ----------------------------------------------------------

    def start(self) -> None:
        """Share the shards and spawn the workers (idempotent).

        Called lazily by the first :meth:`run_tasks`; explicit calls
        just front-load the spawn cost.
        """
        with self._lock:
            self._start_locked()

    def _start_locked(self) -> None:
        if self._closed:
            raise ServiceError("this process engine has been closed")
        if self._started:
            return
        from repro.refstore.format import FileReferenceHandle

        try:
            handles = []
            for shard in self._shards:
                source = shard.source
                if isinstance(source, FileReferenceHandle):
                    # File-backed shard: workers re-open the store file
                    # themselves — no shared-memory copy at all, which
                    # is why shared_nbytes stays 0 on this path.
                    handles.append(source)
                else:
                    owner = share_stored_reference(shard)
                    self._owners.append(owner)
                    handles.append(owner.handle)
            self._task_queue = self._ctx.Queue()
            self._result_queue = self._ctx.Queue()
            for index in range(self._n_workers):
                process = self._ctx.Process(
                    target=worker_main,
                    args=(index, handles, self._domain, self._noisy,
                          self._task_queue, self._result_queue),
                    name=f"asmcap-shard-worker-{index}",
                    daemon=True,
                )
                process.start()
                self._workers.append(process)
            pending = set(range(self._n_workers))
            while pending:
                message = self._next_message()
                if message[0] == "fatal":
                    raise ServiceError(
                        f"shard worker {message[1]} failed to attach "
                        f"its shared references:\n{message[2]}"
                    )
                if message[0] != "ready":  # pragma: no cover - protocol
                    raise ServiceError(
                        f"unexpected startup message {message[0]!r} "
                        f"from a shard worker"
                    )
                _, index, backend_name, n_encodes = message
                self._worker_backends[index] = backend_name
                self._worker_encodes[index] = n_encodes
                pending.discard(index)
        except BaseException:
            self._abandon("engine start-up failed")
            raise
        self._started = True

    def close(self) -> None:
        """Stop the workers and unlink the shared segments (idempotent).

        Live workers get a shutdown sentinel and :data:`_JOIN_SECONDS`
        to exit before being terminated; the segments are always
        unlinked.  A closed engine refuses further :meth:`run_tasks`.
        """
        with self._lock:
            self._close_locked()

    def _close_locked(self) -> None:
        if self._closed:
            return
        self._closed = True
        if self._task_queue is not None and self._broken is None:
            for process in self._workers:
                if process.is_alive():
                    try:
                        self._task_queue.put(None)
                    except (OSError, ValueError):  # pragma: no cover
                        break
        for process in self._workers:
            process.join(timeout=_JOIN_SECONDS)
        self._finalizer.detach()
        _cleanup(self._workers, self._owners)
        for q in (self._task_queue, self._result_queue):
            if q is not None:
                q.close()
                # The feeder threads may still hold unsent items (e.g.
                # tasks a dead worker never drained); don't let them
                # block interpreter shutdown.
                q.cancel_join_thread()
        self._task_queue = None
        self._result_queue = None

    def __enter__(self) -> "ProcessShardEngine":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    def _abandon(self, reason: str) -> None:
        """Mark the engine broken and tear the pool down immediately."""
        self._broken = reason
        self._finalizer.detach()
        _cleanup(self._workers, self._owners)

    # -- execution ----------------------------------------------------------

    def run_tasks(self, tasks: Sequence[ShardTask]
                  ) -> "list[tuple[object, LedgerSummary]]":
        """Execute *tasks* on the worker pool; results in task order.

        Enqueues every task on the shared queue (idle workers pick
        work up in whatever order scheduling allows) and blocks until
        all results arrived.  Returns ``(outcome, summary)`` pairs
        positionally aligned with *tasks* — the caller's task order is
        the only order that exists downstream, which is what keeps the
        merge deterministic under any scheduling.

        Raises :class:`~repro.errors.ServiceError` if a worker died
        (naming it and its exit code) or a task raised (embedding the
        worker-side traceback).  A worker death breaks the engine;
        task errors leave it usable.

        Thread-safe: calls from concurrent dispatch threads (sessions
        sharing one frontend engine) are serialised whole, so one
        call's results can never be drained by another.
        """
        with self._lock:
            self._check_usable()
            self._start_locked()
            _fire_fault("parallel.engine.dispatch", engine=self)
            if not tasks:
                return []
            for offset, task in enumerate(tasks):
                self._task_queue.put((self._next_task_id + offset, task))
            first_id = self._next_task_id
            self._next_task_id += len(tasks)
            results: "dict[int, tuple[object, LedgerSummary]]" = {}
            errors: "dict[int, str]" = {}
            while len(results) + len(errors) < len(tasks):
                message = self._next_message()
                kind = message[0]
                if kind == "ok":
                    _, task_id, worker_index, outcome, summary, encodes = \
                        message
                    self._worker_encodes[worker_index] = encodes
                    results[task_id] = (outcome, summary)
                elif kind == "error":
                    _, task_id, _worker_index, text = message
                    errors[task_id] = text
                else:  # pragma: no cover - protocol
                    raise ServiceError(
                        f"unexpected result message {kind!r} from a shard "
                        f"worker"
                    )
            if errors:
                task_id = min(errors)
                raise ServiceError(
                    f"shard task {task_id - first_id} failed in a worker "
                    f"process:\n{errors[task_id]}"
                )
            return [results[first_id + offset]
                    for offset in range(len(tasks))]

    # -- internals ----------------------------------------------------------

    def _check_usable(self) -> None:
        if self._closed:
            raise ServiceError("this process engine has been closed")
        if self._broken is not None:
            raise ServiceError(
                f"this process engine is broken ({self._broken}); "
                f"build a new pipeline/engine to continue"
            )

    def _next_message(self):
        """One message off the result queue, polling worker liveness.

        Converts a silently-dead worker (kill -9, OOM) into a clear
        :class:`~repro.errors.ServiceError` instead of blocking
        forever on a result that can no longer arrive.
        """
        while True:
            try:
                return self._result_queue.get(timeout=_POLL_SECONDS)
            except queue_module.Empty:
                for index, process in enumerate(self._workers):
                    if not process.is_alive():
                        exit_code = process.exitcode
                        self._abandon(
                            f"worker {index} died with exit code "
                            f"{exit_code}"
                        )
                        raise ServiceError(
                            f"shard worker {index} (pid {process.pid}) "
                            f"died with exit code {exit_code} while "
                            f"tasks were outstanding; its results are "
                            f"lost — the engine is now broken and the "
                            f"run must be retried on a fresh pipeline"
                        ) from None
