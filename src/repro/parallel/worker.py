"""The shard worker process: attach once, search per task, summarise.

One long-lived worker per slot of a
:class:`~repro.parallel.engine.ProcessShardEngine`.  At startup the
worker attaches every shard's shared-memory segment exactly once
(:func:`repro.parallel.shm.attach_stored_reference` — zero-copy, no
encoding pass) and reports a ``ready`` handshake; afterwards it loops
on the task queue until the ``None`` sentinel arrives.

**Per-task matcher, bit-identical by keys.**  Each
:class:`ShardTask` builds a *fresh*
:class:`~repro.core.matcher.AsmCapMatcher` over the attached shard
with the task's seed/config/backend.  That is correct — not merely
convenient — because every random draw the keyed batch path consumes
is a pure function of ``(seed, stream tag, query key, pass tag)``
(:mod:`repro.cam.keyed_noise`): a matcher carries no consumable stream
state between keyed calls, so a throwaway matcher per task makes
exactly the decisions a persistent thread-engine matcher makes for the
same ``(codes, keys, threshold)`` block.  Tasks are therefore
self-contained, which is also what lets sessions with *different*
seeds, configs and backends share one engine (the multi-session
frontend).

**Backends resolve by name, in the worker.**  A task carries at most a
backend *name*; the worker resolves it through the standard order
(explicit > ``REPRO_KERNEL_BACKEND`` > per-process autotune) against
its own registry.  Workers never inherit pickled backend objects or
the parent's calibration cache — a worker on the same machine may even
autotune to a different backend, which is harmless because backends
are bit-identical by contract.

**Ledger summaries, not ledgers.**  The worker folds each task's
ledger into a picklable :class:`LedgerSummary` (exact search counters
plus per-strategy pass counts) and discards the events — the same
fold-and-drop a compacting ledger performs, applied at the process
boundary so result pickles stay small.
"""

from __future__ import annotations

import traceback
from dataclasses import dataclass, field

import numpy as np

from repro.cost.views import SearchStats, search_stats

__all__ = [
    "LedgerSummary",
    "ShardTask",
    "worker_main",
]


@dataclass(frozen=True)
class ShardTask:
    """One self-contained unit of shard work (picklable).

    Exactly one :meth:`~repro.core.matcher.AsmCapMatcher.match_batch`
    call: *codes* against shard *shard_index* at *threshold*, with the
    global determinism *keys* the thread engine would use for the same
    chunk.  ``seed`` is the **pipeline** seed — the worker derives the
    shard's array seed as ``seed + shard_index``, mirroring the
    thread-engine construction.  ``backend`` is a registry *name* (or
    ``None`` for the standard selection order), never an instance.
    """

    shard_index: int
    codes: np.ndarray
    keys: "tuple[int, ...]"
    threshold: int
    seed: int
    config: object          # MatcherConfig | None (frozen dataclass)
    error_model: object     # ErrorModel (frozen dataclass)
    backend: "str | None" = None


@dataclass(frozen=True)
class LedgerSummary:
    """The compacted, picklable residue of one task's cost ledger.

    ``stats`` is the exact :func:`~repro.cost.views.search_stats` fold
    of the task's events; ``pass_counts`` the per-strategy event
    counts; ``n_events`` how many events were folded away.  Summing
    task summaries in deterministic task order is the process engine's
    equivalent of folding a compacted ledger — integer counters are
    bit-identical to the thread engine's, float totals agree to float
    precision (the documented grouping caveat of
    :meth:`~repro.core.pipeline.ShardedReadMappingPipeline.merged_stats`).
    """

    stats: SearchStats
    pass_counts: "dict[str, int]" = field(default_factory=dict)
    n_events: int = 0


def _resolved_default_backend_name() -> str:
    """The backend a ``backend=None`` task will run on, in *this*
    process (env var > per-process autotune)."""
    from repro.kernels import resolve_backend

    return resolve_backend(None).name


def worker_main(worker_index: int, handles, domain: str, noisy: bool,
                task_queue, result_queue) -> None:
    """Entry point of one spawned shard worker.

    Protocol (all messages are plain picklable tuples):

    * startup — attach every shard handle, then send
      ``("ready", worker_index, default_backend_name, n_encodes)``;
      an attach/validation failure sends
      ``("fatal", worker_index, traceback_text)`` and exits.
    * loop — ``task_queue.get()`` yields either ``None`` (shutdown
      sentinel → clean exit) or ``(task_id, ShardTask)``; each task
      answers ``("ok", task_id, worker_index, outcome, summary,
      n_encodes)`` or ``("error", task_id, worker_index,
      traceback_text)`` (the worker stays alive after a task error).

    ``n_encodes`` is the running total of encode passes across this
    worker's attached references — the encode-once evidence, asserted
    to stay 0 by tests and the process-engine benchmark.

    Each handle is either a shared-memory
    :class:`~repro.parallel.shm.SharedReferenceHandle` (attach the
    parent's copied segment) or an on-disk
    :class:`~repro.refstore.format.FileReferenceHandle` (re-open the
    store file's row range directly — the parent copied nothing, and
    the OS page cache shares the file's physical pages across every
    worker).  Both attach zero-copy with ``n_encodes == 0``.
    """
    from repro.parallel.shm import SharedReferenceHandle, attach_stored_reference
    from repro.refstore.format import open_stored_reference

    attachments = []
    try:
        try:
            for handle in handles:
                if isinstance(handle, SharedReferenceHandle):
                    attachments.append(attach_stored_reference(handle))
                else:
                    attachments.append(open_stored_reference(handle))
            references = [a.reference for a in attachments]
        except BaseException:
            result_queue.put(
                ("fatal", worker_index, traceback.format_exc())
            )
            return
        result_queue.put((
            "ready", worker_index, _resolved_default_backend_name(),
            sum(r.n_encodes for r in references),
        ))
        while True:
            item = task_queue.get()
            if item is None:
                return
            task_id, task = item
            try:
                outcome, summary = _run_task(
                    task, references[task.shard_index], domain, noisy
                )
            except BaseException:  # noqa: BLE001 — report, stay alive
                result_queue.put(
                    ("error", task_id, worker_index,
                     traceback.format_exc())
                )
                continue
            result_queue.put((
                "ok", task_id, worker_index, outcome, summary,
                sum(r.n_encodes for r in references),
            ))
    finally:
        for attachment in attachments:
            attachment.close()


def _run_task(task: ShardTask, reference, domain: str,
              noisy: bool) -> "tuple[object, LedgerSummary]":
    """One task's match_batch over the attached shard.

    The matcher construction mirrors the thread engine's pre-encoded
    branch exactly — ``over_stored`` with ``seed + shard_index`` —
    so the keyed draws, and with them every decision and per-query
    cost, are bit-identical to the same chunk on the thread engine.
    """
    from repro.core.matcher import AsmCapMatcher

    matcher = AsmCapMatcher.over_stored(
        reference, task.error_model, task.config,
        domain=domain, noisy=noisy,
        seed=task.seed + task.shard_index,
        ledger_compaction=None, backend=task.backend,
    )
    outcome = matcher.match_batch(task.codes, task.threshold,
                                  query_keys=list(task.keys))
    ledger = matcher.array.ledger
    summary = LedgerSummary(
        stats=search_stats(ledger),
        pass_counts=ledger.pass_counts(),
        n_events=len(ledger),
    )
    return outcome, summary
