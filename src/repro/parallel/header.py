"""The shared container codec behind both reference transports.

Two containers carry a sealed :class:`~repro.cam.array.StoredReference`
payload across a process or time boundary: the shared-memory segments
of :mod:`repro.parallel.shm` (process boundary) and the on-disk files
of :mod:`repro.refstore.format` (boot boundary).  Both use the exact
same layout — only the leading magic differs — and this module is the
single definition of it, so the two formats cannot drift::

    magic (8 bytes, container-specific)      8 bytes
    version, meta_length                     2 x uint32 (little-endian)
    meta_crc32, payload_crc32                2 x uint32
    payload_length                           uint64
    meta JSON                                meta_length bytes
    ... 64-byte alignment padding ...
    payload arrays (fixed field order of
    repro.kernels.ENCODED_REFERENCE_FIELDS)  payload_length bytes

The meta JSON records each array's name/dtype/shape/offset/nbytes.
Payload arrays start on 64-byte boundaries (cache-line aligned; uint64
planes need at least 8).  One CRC32 covers the whole payload region —
alignment padding included, which is why writers must zero-initialise
it — and a second covers the meta JSON, so a torn, truncated or
foreign container fails loudly at open instead of producing silently
wrong mismatch counts.

The codec is buffer-agnostic: :func:`plan_layout` sizes a container
for a set of arrays, :func:`write_payload` + :func:`seal_header` fill
any writable buffer (a ``multiprocessing.shared_memory`` mapping, a
pre-sized ``bytearray`` destined for disk), and :func:`open_container`
validates any readable buffer (a shared segment, an ``mmap``) and
returns read-only, zero-copy array views over it.
"""

from __future__ import annotations

import json
import struct
import zlib
from dataclasses import dataclass
from typing import Sequence, Type

import numpy as np

__all__ = [
    "ALIGN",
    "HEADER",
    "ContainerLayout",
    "aligned",
    "open_container",
    "plan_layout",
    "seal_header",
    "write_payload",
]

#: ``magic | version | meta_length | meta_crc32 | payload_crc32 |
#: payload_length`` — little-endian, fixed width.
HEADER = struct.Struct("<8sIIIIQ")

#: Payload arrays start on this alignment (numpy views over uint64
#: planes need 8; 64 keeps rows cache-line aligned).
ALIGN = 64


def aligned(offset: int) -> int:
    """Round *offset* up to the next :data:`ALIGN` boundary."""
    return (offset + ALIGN - 1) // ALIGN * ALIGN


@dataclass(frozen=True)
class ContainerLayout:
    """The resolved geometry of one container.

    ``specs`` mirrors the meta JSON's ``arrays`` list (name, dtype,
    shape, offset, nbytes — offsets relative to ``payload_start``);
    ``meta`` is the encoded JSON; ``total`` the container size in
    bytes.
    """

    specs: "tuple[dict, ...]"
    meta: bytes
    payload_start: int
    payload_length: int

    @property
    def total(self) -> int:
        return self.payload_start + self.payload_length


def plan_layout(
        arrays: "Sequence[tuple[str, np.ndarray]]") -> ContainerLayout:
    """Size a container for *arrays* (name, array) pairs, in order."""
    specs = []
    offset = 0
    for name, array in arrays:
        offset = aligned(offset)
        specs.append({
            "name": name,
            "dtype": array.dtype.str,
            "shape": list(array.shape),
            "offset": offset,
            "nbytes": int(array.nbytes),
        })
        offset += array.nbytes
    meta = json.dumps({"arrays": specs}).encode("ascii")
    return ContainerLayout(
        specs=tuple(specs), meta=meta,
        payload_start=aligned(HEADER.size + len(meta)),
        payload_length=offset,
    )


def write_payload(buf, layout: ContainerLayout,
                  arrays: "Sequence[tuple[str, np.ndarray]]") -> None:
    """Copy every array into its planned slot of *buf*.

    *buf* must be zero-initialised and at least ``layout.total`` bytes
    — the payload CRC covers the alignment padding between arrays.
    """
    for spec, (_, array) in zip(layout.specs, arrays, strict=True):
        array = np.ascontiguousarray(array)
        view = np.ndarray(array.shape, dtype=array.dtype, buffer=buf,
                          offset=layout.payload_start + spec["offset"])
        view[...] = array


def seal_header(buf, layout: ContainerLayout, *, magic: bytes,
                version: int) -> None:
    """Checksum the written payload and stamp header + meta into *buf*.

    Called after :func:`write_payload`: one CRC over the whole payload
    region (zero padding included), matching what
    :func:`open_container` verifies.
    """
    payload_crc = zlib.crc32(
        buf[layout.payload_start:layout.payload_start
            + layout.payload_length]
    )
    buf[:HEADER.size] = HEADER.pack(
        magic, version, len(layout.meta),
        zlib.crc32(layout.meta), payload_crc, layout.payload_length,
    )
    buf[HEADER.size:HEADER.size + len(layout.meta)] = layout.meta


def open_container(buf, *, magic: bytes, version: int, describe: str,
                   error: Type[Exception],
                   expected_fields: "tuple[str, ...] | None" = None,
                   ) -> "dict[str, np.ndarray]":
    """Validate a container buffer and return zero-copy array views.

    The full validation ladder — size, magic, version, truncation,
    meta CRC32, payload CRC32, field names — runs before any view is
    built, raising *error* with *describe* naming the container (e.g.
    ``"shared segment 'x'"`` or ``"reference store '/p'"``) on the
    first violation.  Every returned array is a read-only view over
    *buf*; the caller owns keeping the buffer mapped while they live.
    """
    if len(buf) < HEADER.size:
        raise error(f"{describe} is smaller than a header")
    got_magic, got_version, meta_length, meta_crc, payload_crc, \
        payload_length = HEADER.unpack_from(buf, 0)
    if got_magic != magic:
        raise error(
            f"{describe} is not an ASMCap reference "
            f"(bad magic {got_magic!r})"
        )
    if got_version != version:
        raise error(
            f"{describe} has header version {got_version}; "
            f"this build reads version {version}"
        )
    meta_end = HEADER.size + meta_length
    payload_start = aligned(meta_end)
    if len(buf) < payload_start + payload_length:
        raise error(
            f"{describe} is truncated "
            f"({len(buf)} bytes, header promises "
            f"{payload_start + payload_length})"
        )
    meta_bytes = bytes(buf[HEADER.size:meta_end])
    if zlib.crc32(meta_bytes) != meta_crc:
        raise error(f"{describe} failed the meta checksum")
    if zlib.crc32(buf[payload_start:payload_start + payload_length]) \
            != payload_crc:
        raise error(f"{describe} failed the payload checksum")
    meta = json.loads(meta_bytes.decode("ascii"))
    arrays: "dict[str, np.ndarray]" = {}
    for spec in meta["arrays"]:
        view = np.ndarray(
            tuple(spec["shape"]), dtype=np.dtype(spec["dtype"]),
            buffer=buf, offset=payload_start + spec["offset"],
        )
        view.setflags(write=False)
        arrays[spec["name"]] = view
    if expected_fields is not None and tuple(arrays) != expected_fields:
        raise error(
            f"{describe} carries arrays "
            f"{tuple(arrays)}, expected {expected_fields}"
        )
    return arrays
