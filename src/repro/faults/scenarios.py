"""Deterministic chaos workloads across engine x backend x compaction.

Each :class:`ChaosScenario` is a small, fully seeded mapping workload
with a fixed route through the stack — direct segments into the
streaming service, via a saved store file, via a catalog borrow, or
through the multi-session frontend — and a declared set of applicable
fault kinds (the hook points its route actually reaches).  ``run()``
executes the workload once and returns a :class:`ScenarioOutcome`
whose ``result`` is a canonical, ``==``-comparable projection of the
final :class:`~repro.core.pipeline.MappingReport`; the
:class:`~repro.faults.checker.InvariantChecker` compares armed runs
against the fault-free baseline bit for bit.

Scenario geometry is pinned (shard counts, worker counts, micro-batch
size) rather than autotuned, so hit indices — and therefore which
dispatch a scheduled fault lands on — are identical on every machine.
Every scenario issues exactly :data:`N_DISPATCHES` micro-batch
dispatches (the last one at drain time), which is the ``max_hits`` a
generated plan should use; ``kill_mid_drain`` then lands on the
drain-time dispatch by construction.
"""

from __future__ import annotations

import contextlib
import tempfile
from dataclasses import dataclass
from pathlib import Path

import numpy as np

from repro.errors import CamConfigError, ReproError, ServiceError

__all__ = [
    "N_DISPATCHES",
    "SCENARIOS",
    "ChaosScenario",
    "ScenarioOutcome",
    "canonical_report",
    "get_scenario",
]

#: Workload shape shared by every scenario (pinned, never autotuned).
N_READS = 18
MICRO_BATCH = 4
THRESHOLD = 6
SEED = 11
N_SHARDS = 2
#: ceil(N_READS / MICRO_BATCH): 4 full batches + the drain-time flush.
N_DISPATCHES = 5

#: Fault kinds reaching the process engine's hook points (appended to
#: a scenario's service-level kinds when its fan-out is ``process``).
_PROCESS_KINDS = ("worker_kill", "worker_stall", "kill_mid_drain")


def _workload() -> "tuple[np.ndarray, list[np.ndarray]]":
    """The one deterministic reference + read feed every scenario maps."""
    rng = np.random.default_rng(0xC0FFEE)
    segments = rng.integers(0, 4, size=(64, 48), dtype=np.uint8)
    reads: "list[np.ndarray]" = []
    for j in range(N_READS):
        if j % 3 == 2:
            reads.append(rng.integers(0, 4, size=48, dtype=np.uint8))
        else:
            reads.append(segments[(j * 7) % 64].copy())
    return segments, reads


def _error_model():
    from repro.genome.edits import ErrorModel

    return ErrorModel(substitution=0.02, insertion=0.01, deletion=0.01)


def canonical_report(report) -> tuple:
    """A hashable, exactly-comparable projection of a mapping report.

    Counters, the float cost totals (compared bit-exactly — the
    determinism contract promises identical accumulation order), and
    every per-read decision."""
    return (
        report.n_reads,
        report.n_mapped,
        report.n_unique,
        report.n_searches,
        report.total_energy_joules,
        report.total_latency_ns,
        tuple((mapping.read_index, mapping.matched_rows)
              for mapping in report.mappings),
    )


@dataclass(frozen=True)
class ScenarioOutcome:
    """``result`` plus the documented typed errors the scenario
    *handled* through a sanctioned recovery (currently: retrying an
    all-or-nothing submit after backlog saturation) — recorded so the
    checker can demand they were caused by a fired fault."""

    result: tuple
    handled: "tuple[BaseException, ...]" = ()


@dataclass(frozen=True)
class ChaosScenario:
    """One fixed route through the stack plus its applicable faults."""

    name: str
    engine: str                      # "batched" | "sharded"
    shard_engine: "str | None"       # None | "thread" | "process"
    backend: str
    compaction: "int | None"
    route: str                       # "stream" | "store" | "catalog"
    #                                # | "frontend"
    fault_kinds: "tuple[str, ...]"
    max_hits: int = N_DISPATCHES

    @property
    def reachable_points(self) -> "tuple[str, ...]":
        """The hook points this route actually drives — plan
        generation attaches faults here only, so schedules are rarely
        vacuous.  ``parallel.shm.attach`` is never listed: it fires in
        the spawned worker, where the parent's armed injector does not
        exist (shm corruption is injected parent-side at share time
        instead)."""
        if self.route == "frontend":
            return ("service.frontend.enqueue",
                    "service.frontend.execute")
        points = ("service.stream.dispatch",)
        if self.route == "store":
            points += ("refstore.save", "refstore.open")
        elif self.route == "catalog":
            points += ("refstore.save", "refstore.catalog.open")
        if self.shard_engine == "process":
            points += ("parallel.engine.dispatch",)
            if self.route == "stream":
                # File-backed routes share shards by path, not shm.
                points += ("parallel.shm.share",)
        return points

    def run(self) -> ScenarioOutcome:
        with tempfile.TemporaryDirectory(prefix="asmcap-chaos-") as dir_:
            if self.route == "stream":
                return self._run_stream(None)
            if self.route == "store":
                return self._run_store(Path(dir_))
            if self.route == "catalog":
                return self._run_catalog(Path(dir_))
            if self.route == "frontend":
                return self._run_frontend()
            raise CamConfigError(f"unknown scenario route {self.route!r}")

    # -- routes --------------------------------------------------------------

    def _service(self, source, **extra):
        from repro.service.stream import StreamingMappingService

        kwargs = {
            "error_model": _error_model(), "threshold": THRESHOLD,
            "engine": self.engine, "micro_batch": MICRO_BATCH,
            "compaction": self.compaction, "seed": SEED,
            "backend": self.backend,
        }
        if self.engine == "sharded":
            kwargs.update(n_shards=N_SHARDS, max_workers=1,
                          shard_engine=self.shard_engine)
        kwargs.update(extra)
        return StreamingMappingService(source, **kwargs)

    def _run_stream(self, _) -> ScenarioOutcome:
        segments, reads = _workload()
        service = self._service(segments)
        try:
            service.submit_many(reads)
            return ScenarioOutcome(canonical_report(service.drain()))
        finally:
            with contextlib.suppress(ReproError):
                service.close()

    def _run_store(self, workdir: Path) -> ScenarioOutcome:
        from repro.cam.array import StoredReference
        from repro.refstore.format import (
            open_stored_reference,
            save_stored_reference,
        )

        segments, reads = _workload()
        path = workdir / "reference.asmcap"
        save_stored_reference(path, StoredReference.encode(segments))
        mapped = open_stored_reference(path)
        try:
            service = self._service(mapped.reference)
            try:
                service.submit_many(reads)
                return ScenarioOutcome(
                    canonical_report(service.drain())
                )
            finally:
                with contextlib.suppress(ReproError):
                    service.close()
        finally:
            mapped.close()

    def _run_catalog(self, workdir: Path) -> ScenarioOutcome:
        from repro.cam.array import StoredReference
        from repro.refstore import ReferenceCatalog

        segments, reads = _workload()
        catalog = ReferenceCatalog()
        try:
            catalog.store("ref", StoredReference.encode(segments),
                          workdir / "reference.asmcap")
            service = self._service("ref", catalog=catalog)
            try:
                service.submit_many(reads)
                return ScenarioOutcome(
                    canonical_report(service.drain())
                )
            finally:
                with contextlib.suppress(ReproError):
                    service.close()
        finally:
            if catalog.stats().pinned_count:
                raise ServiceError(
                    "chaos scenario leaked a catalog lease"
                )
            catalog.close()

    def _run_frontend(self) -> ScenarioOutcome:
        from repro.service.frontend import MappingFrontend

        segments, reads = _workload()
        kwargs = {"engine": self.engine, "pool_workers": 2,
                  "backend": self.backend}
        if self.engine == "sharded":
            kwargs.update(n_shards=N_SHARDS,
                          shard_engine=self.shard_engine)
        frontend = MappingFrontend(segments, _error_model(), **kwargs)
        handled: "list[BaseException]" = []
        try:
            session = frontend.session(
                THRESHOLD, seed=SEED, micro_batch=MICRO_BATCH,
                compaction=self.compaction,
            )
            for read in reads:
                try:
                    session.submit(read)
                except ServiceError as exc:
                    if "backlog full" not in str(exc):
                        raise
                    # The documented recovery: a rejected submit is
                    # all-or-nothing, so retrying the same read cannot
                    # duplicate it.
                    handled.append(exc)
                    session.submit(read)
            report = session.drain()
            return ScenarioOutcome(canonical_report(report),
                                   tuple(handled))
        finally:
            with contextlib.suppress(ReproError):
                frontend.close()


_SERVICE_KINDS = ("poisoned_read", "slow_batch")

#: The chaos matrix: both service engines, both shard fan-out engines,
#: both kernel backends, compaction on and off, all four routes.
SCENARIOS: "tuple[ChaosScenario, ...]" = (
    ChaosScenario(
        name="stream-batched-gemm",
        engine="batched", shard_engine=None, backend="numpy-gemm",
        compaction=None, route="stream",
        fault_kinds=_SERVICE_KINDS,
    ),
    ChaosScenario(
        name="stream-sharded-thread-bitpacked",
        engine="sharded", shard_engine="thread", backend="bitpacked",
        compaction=8, route="stream",
        fault_kinds=_SERVICE_KINDS,
    ),
    ChaosScenario(
        name="stream-sharded-process-gemm",
        engine="sharded", shard_engine="process", backend="numpy-gemm",
        compaction=8, route="stream",
        fault_kinds=_SERVICE_KINDS + _PROCESS_KINDS + ("shm_corrupt",),
    ),
    ChaosScenario(
        name="store-sharded-thread-gemm",
        engine="sharded", shard_engine="thread", backend="numpy-gemm",
        compaction=None, route="store",
        fault_kinds=_SERVICE_KINDS + ("store_truncate",
                                      "store_crc_flip"),
    ),
    ChaosScenario(
        name="store-sharded-process-bitpacked",
        engine="sharded", shard_engine="process", backend="bitpacked",
        compaction=8, route="store",
        fault_kinds=_SERVICE_KINDS + _PROCESS_KINDS
        + ("store_truncate", "store_crc_flip"),
    ),
    ChaosScenario(
        name="catalog-batched-bitpacked",
        engine="batched", shard_engine=None, backend="bitpacked",
        compaction=8, route="catalog",
        fault_kinds=_SERVICE_KINDS + ("poisoned_open",),
    ),
    ChaosScenario(
        name="frontend-batched-gemm",
        engine="batched", shard_engine=None, backend="numpy-gemm",
        compaction=8, route="frontend",
        fault_kinds=("poisoned_read", "slow_batch", "backlog_flood"),
    ),
    ChaosScenario(
        name="frontend-sharded-thread-bitpacked",
        engine="sharded", shard_engine="thread", backend="bitpacked",
        compaction=None, route="frontend",
        fault_kinds=("poisoned_read", "slow_batch", "backlog_flood"),
    ),
)


def get_scenario(name: str) -> ChaosScenario:
    for scenario in SCENARIOS:
        if scenario.name == name:
            return scenario
    raise CamConfigError(
        f"unknown chaos scenario {name!r}; known: "
        f"{[s.name for s in SCENARIOS]}"
    )
