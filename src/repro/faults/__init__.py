"""Deterministic, seeded fault injection for the service stack.

``repro.faults`` turns the repo's standing contracts — surface as a
documented typed error, or tolerate bit-identically; never leak a
resource — into actively falsified properties:

* :mod:`repro.faults.plan` — typed faults and seed-keyed
  :class:`FaultPlan` schedules (same seed, same schedule);
* :mod:`repro.faults.hooks` — the named injection points threaded
  through the parallel/refstore/service modules (:func:`fire` is a
  no-op unless a plan is :func:`arm`-ed);
* :mod:`repro.faults.checker` — the :class:`InvariantChecker` judging
  every chaos run against the surface-or-tolerate trichotomy plus
  resource hygiene (import it explicitly; it is not re-exported here
  because it builds on the service stack, which itself imports these
  hooks);
* :mod:`repro.faults.scenarios` — small deterministic workloads across
  engine x backend x compaction combinations for the chaos harness
  (``tools/chaos_soak.py``) and the tier-1 fixtures
  (``tests/faults/``).

This package root stays import-light (plan + hooks only) so the
production hook sites can import it without cycles.
"""

from repro.faults.hooks import FaultInjector, arm, armed, fire
from repro.faults.plan import (
    FAULT_SPECS,
    HOOK_POINTS,
    Fault,
    FaultPlan,
    FaultSpec,
)

__all__ = [
    "FAULT_SPECS",
    "HOOK_POINTS",
    "Fault",
    "FaultInjector",
    "FaultPlan",
    "FaultSpec",
    "arm",
    "armed",
    "fire",
]
