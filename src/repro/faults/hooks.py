"""Named injection hook points and the arming registry.

The runtime side of :mod:`repro.faults`: production modules call
:func:`fire` at their named hook points (see
:data:`~repro.faults.plan.HOOK_POINTS`), and the call is a no-op unless
a :class:`~repro.faults.plan.FaultPlan` is **armed** via :func:`arm`.
The unarmed fast path is a single module-global ``None`` check — no
locks, no allocation beyond the call itself — which is what lets the
hooks live permanently on the dispatch paths.

Armed, every ``fire(point)`` increments that point's hit counter (under
one lock, so concurrent dispatch threads count consistently) and, when
the plan schedules a fault on ``(point, hit)``, applies the fault's
action: killing a worker, flipping payload bytes, truncating a store
buffer, raising a typed error, or sleeping.  Actions run *outside* the
counter lock — a stall must not serialise unrelated hook points.

Arming is deliberately process-local and non-reentrant: one armed plan
at a time, and faults never propagate into spawned worker processes
(the ``spawn`` context inherits nothing) — which is why cross-process
faults are injected on the parent side (e.g. ``shm_corrupt`` flips the
segment at *share* time, so the worker's attach fails through the
engine's existing fatal handshake).
"""

from __future__ import annotations

import contextlib
import os
import signal
import threading
import time

from repro.errors import CamConfigError, ServiceError
from repro.faults.plan import HOOK_POINTS, Fault, FaultPlan

__all__ = ["FaultInjector", "arm", "fire", "armed"]

#: The armed injector; ``None`` = unarmed (the zero-overhead fast path).
_ACTIVE: "FaultInjector | None" = None

#: Stall bounds (seconds) for the latency-only kinds: long enough to
#: perturb any accidental wall-clock coupling, short enough that a
#: chaos soak of dozens of schedules stays fast.
_STALL_MIN_SECONDS = 0.001
_STALL_MAX_SECONDS = 0.020


def fire(point: str, **ctx) -> None:
    """Reach a named hook point; applies a fault only when armed.

    Production call sites invoke this unconditionally — the unarmed
    path returns immediately.  *ctx* carries whatever the point's
    faults may need (the engine, a mutable buffer + layout, a file
    path); unused context is ignored.
    """
    injector = _ACTIVE
    if injector is None:
        return
    injector._fire(point, ctx)


def armed() -> bool:
    """Whether a fault plan is currently armed in this process."""
    return _ACTIVE is not None


class FaultInjector:
    """One armed plan's runtime state: hit counters and the fired log.

    Created by :func:`arm`; :attr:`fired` lists the faults that
    actually triggered, in firing order — the evidence the
    :class:`~repro.faults.checker.InvariantChecker` judges a chaos run
    against (a scheduled fault whose hit was never reached is vacuous).
    """

    def __init__(self, plan: FaultPlan):
        for fault in plan.faults:
            if fault.point not in HOOK_POINTS:
                raise CamConfigError(
                    f"fault plan names unknown hook point "
                    f"{fault.point!r}; known: {HOOK_POINTS}"
                )
        self._plan = plan
        self._schedule = {(fault.point, fault.hit): fault
                          for fault in plan.faults}
        self._counts: "dict[str, int]" = {}
        self._lock = threading.Lock()
        self.fired: "list[Fault]" = []

    @property
    def plan(self) -> FaultPlan:
        return self._plan

    def hit_counts(self) -> "dict[str, int]":
        """Times each hook point has been reached so far."""
        with self._lock:
            return dict(self._counts)

    def _fire(self, point: str, ctx: dict) -> None:
        with self._lock:
            hit = self._counts.get(point, 0)
            self._counts[point] = hit + 1
            fault = self._schedule.get((point, hit))
            if fault is not None:
                self.fired.append(fault)
        if fault is not None:
            # Outside the lock: a stall or kill must not serialise
            # other hook points (or deadlock a concurrent fire).
            _apply(fault, ctx)


@contextlib.contextmanager
def arm(plan: FaultPlan):
    """Arm *plan* for the dynamic extent of the ``with`` block.

    Yields the :class:`FaultInjector` (read its :attr:`~FaultInjector.
    fired` log afterwards).  Non-reentrant: arming while armed raises
    :class:`~repro.errors.CamConfigError` — overlapping chaos runs
    would make hit counts meaningless.
    """
    global _ACTIVE
    if _ACTIVE is not None:
        raise CamConfigError(
            "a fault plan is already armed in this process; chaos "
            "runs must not overlap"
        )
    injector = FaultInjector(plan)
    _ACTIVE = injector
    try:
        yield injector
    finally:
        _ACTIVE = None


# -- fault actions -----------------------------------------------------------


def _apply(fault: Fault, ctx: dict) -> None:
    action = _ACTIONS[fault.kind]
    action(fault, ctx)


def _stall(fault: Fault, ctx: dict) -> None:
    span = _STALL_MAX_SECONDS - _STALL_MIN_SECONDS
    time.sleep(_STALL_MIN_SECONDS + (fault.arg % 1000) / 1000.0 * span)


def _kill_worker(fault: Fault, ctx: dict) -> None:
    engine = ctx.get("engine")
    if engine is None:
        return
    pids = engine.worker_pids()
    if not pids:
        return
    os.kill(pids[fault.arg % len(pids)], signal.SIGKILL)


def _payload_bounds(buf) -> "tuple[int, int]":
    """(payload_start, payload_length) read from a sealed container
    header — so corruption always lands on CRC-covered bytes even when
    the buffer is page-rounded past the payload."""
    from repro.parallel.header import HEADER, aligned

    _, _, meta_length, _, _, payload_length = HEADER.unpack_from(buf, 0)
    return aligned(HEADER.size + meta_length), payload_length


def _flip_payload_byte(fault: Fault, ctx: dict) -> None:
    buf = ctx.get("buf")
    if buf is None:
        return
    start, length = _payload_bounds(buf)
    if length <= 0:
        return
    offset = start + fault.arg % length
    buf[offset] = buf[offset] ^ 0x01


def _truncate_store(fault: Fault, ctx: dict) -> None:
    buf = ctx.get("buf")
    if buf is None:
        return
    start, length = _payload_bounds(buf)
    del buf[start + length // 2:]


def _corrupt_store_file(fault: Fault, ctx: dict) -> None:
    path = ctx.get("path")
    if path is None or not os.path.isfile(path):
        return
    with open(path, "r+b") as handle:
        handle.seek(-1, os.SEEK_END)
        last = handle.read(1)
        handle.seek(-1, os.SEEK_END)
        handle.write(bytes([last[0] ^ 0x01]))


def _poison_read(fault: Fault, ctx: dict) -> None:
    raise CamConfigError(
        f"injected poisoned read at {fault.point} "
        f"(hit {fault.hit}, plan arg {fault.arg})"
    )


def _flood_backlog(fault: Fault, ctx: dict) -> None:
    raise ServiceError(
        f"frontend backlog full (injected saturation at hit "
        f"{fault.hit}); drain sessions or slow the feed"
    )


_ACTIONS = {
    "worker_kill": _kill_worker,
    "kill_mid_drain": _kill_worker,
    "worker_stall": _stall,
    "shm_corrupt": _flip_payload_byte,
    "store_truncate": _truncate_store,
    "store_crc_flip": _flip_payload_byte,
    "poisoned_open": _corrupt_store_file,
    "poisoned_read": _poison_read,
    "slow_batch": _stall,
    "backlog_flood": _flood_backlog,
}
