"""Typed faults and seed-keyed fault schedules.

The schedule side of :mod:`repro.faults`: a :class:`Fault` names *what*
goes wrong (its ``kind``), *where* (a hook-point name from
:data:`HOOK_POINTS`) and *when* (the 0-based ``hit`` index of that
point — the N-th time the armed run reaches it).  A :class:`FaultPlan`
is an immutable set of faults derived from one integer seed by
:meth:`FaultPlan.generate`, so the same seed always produces the same
schedule — which is what lets the chaos harness replay a failing run
exactly and assert that verdicts are reproducible.

The catalogue of injectable failures lives in :data:`FAULT_SPECS`: for
every kind, the hook points it may attach to and the *documented* typed
errors it is allowed to surface as.  A kind with an empty expected set
(``worker_stall``, ``slow_batch``) must be **tolerated** — the run has
to complete bit-identically to the fault-free baseline.  That table is
the single source the :class:`~repro.faults.checker.InvariantChecker`
judges runs against; adding a fault kind means declaring its contract
here first.

This module is import-light on purpose (no numpy, no repro engines):
the production hook sites import :mod:`repro.faults.hooks`, which
imports only this.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.errors import (
    CamConfigError,
    LedgerCompactionError,
    RefStoreError,
    ServiceError,
)

__all__ = [
    "FAULT_SPECS",
    "HOOK_POINTS",
    "Fault",
    "FaultPlan",
    "FaultSpec",
]

#: Every named injection site threaded through the production modules.
#: ``fire(point, ...)`` calls with any other name raise at arm time —
#: a typo'd hook would otherwise silently never fire.
HOOK_POINTS = (
    "parallel.engine.dispatch",
    "parallel.shm.share",
    "parallel.shm.attach",
    "refstore.save",
    "refstore.open",
    "refstore.catalog.open",
    "service.stream.dispatch",
    "service.frontend.enqueue",
    "service.frontend.execute",
)


@dataclass(frozen=True)
class FaultSpec:
    """The standing contract of one fault kind.

    ``points`` are the hook points the kind may attach to; ``expected``
    the documented error types a run hitting it may surface as (empty =
    the fault must be tolerated bit-identically); ``doc`` one line for
    reports and artifacts.
    """

    points: "tuple[str, ...]"
    expected: "tuple[type, ...]"
    doc: str


#: kind -> contract.  The checker's trichotomy is judged against the
#: ``expected`` sets; :class:`~repro.errors.LedgerCompactionError` is
#: reachable only through merge-rule violations, which no current kind
#: induces, but it stays in the documented surface set of the checker.
FAULT_SPECS: "dict[str, FaultSpec]" = {
    "worker_kill": FaultSpec(
        points=("parallel.engine.dispatch",),
        expected=(ServiceError,),
        doc="SIGKILL one process-engine worker before a dispatch",
    ),
    "kill_mid_drain": FaultSpec(
        points=("parallel.engine.dispatch",),
        expected=(ServiceError,),
        doc="SIGKILL one worker at the drain-time dispatch",
    ),
    "worker_stall": FaultSpec(
        points=("parallel.engine.dispatch",),
        expected=(),
        doc="stall a dispatch briefly (latency only; must be tolerated)",
    ),
    "shm_corrupt": FaultSpec(
        points=("parallel.shm.share", "parallel.shm.attach"),
        expected=(ServiceError, CamConfigError),
        doc="flip one payload byte of a shared reference segment",
    ),
    "store_truncate": FaultSpec(
        points=("refstore.save",),
        expected=(RefStoreError,),
        doc="truncate a reference store file at save time",
    ),
    "store_crc_flip": FaultSpec(
        points=("refstore.save",),
        expected=(RefStoreError,),
        doc="flip one payload byte of a store file at save time",
    ),
    "poisoned_open": FaultSpec(
        points=("refstore.catalog.open",),
        expected=(RefStoreError,),
        doc="corrupt a store file on disk just before a catalog open",
    ),
    "poisoned_read": FaultSpec(
        points=("service.stream.dispatch", "service.frontend.execute"),
        expected=(CamConfigError, ServiceError),
        doc="raise a typed error mid-micro-batch from the dispatch path",
    ),
    "slow_batch": FaultSpec(
        points=("service.stream.dispatch", "service.frontend.execute"),
        expected=(),
        doc="delay a micro-batch dispatch (latency only; tolerated)",
    ),
    "backlog_flood": FaultSpec(
        points=("service.frontend.enqueue",),
        expected=(ServiceError,),
        doc="simulate a saturated frontend backlog at enqueue",
    ),
}

#: Documented error surface of the whole fault model (DESIGN.md "Fault
#: model"): every surfaced chaos error must be one of these.
DOCUMENTED_ERRORS = (ServiceError, CamConfigError, LedgerCompactionError)


@dataclass(frozen=True)
class Fault:
    """One scheduled failure: *kind* at *point*, on that point's
    *hit*-th firing (0-based), with a kind-specific integer *arg*
    (byte offset, worker index, stall milliseconds — see
    :mod:`repro.faults.hooks`)."""

    kind: str
    point: str
    hit: int
    arg: int = 0

    def __post_init__(self):
        spec = FAULT_SPECS.get(self.kind)
        if spec is None:
            raise CamConfigError(
                f"unknown fault kind {self.kind!r}; known: "
                f"{sorted(FAULT_SPECS)}"
            )
        if self.point not in spec.points:
            raise CamConfigError(
                f"fault kind {self.kind!r} cannot attach to hook point "
                f"{self.point!r}; allowed: {spec.points}"
            )
        if self.hit < 0:
            raise CamConfigError(
                f"fault hit index must be >= 0, got {self.hit}"
            )

    @property
    def spec(self) -> FaultSpec:
        return FAULT_SPECS[self.kind]

    @property
    def expected(self) -> "tuple[type, ...]":
        """Documented error types this fault may surface as."""
        return FAULT_SPECS[self.kind].expected

    def describe(self) -> "dict[str, object]":
        """JSON-ready record (the chaos artifact's schedule rows)."""
        return {"kind": self.kind, "point": self.point,
                "hit": self.hit, "arg": self.arg}


@dataclass(frozen=True)
class FaultPlan:
    """An immutable, seed-keyed schedule of typed faults.

    At most one fault per ``(point, hit)`` slot — generation enforces
    it, and manual construction through :meth:`of` validates it — so an
    armed run's behaviour is a pure function of the plan.
    """

    seed: int
    faults: "tuple[Fault, ...]" = field(default_factory=tuple)

    def __post_init__(self):
        slots = [(fault.point, fault.hit) for fault in self.faults]
        if len(set(slots)) != len(slots):
            raise CamConfigError(
                f"fault plan schedules multiple faults on one "
                f"(point, hit) slot: {sorted(slots)}"
            )

    @classmethod
    def of(cls, *faults: Fault, seed: int = 0) -> "FaultPlan":
        """A hand-built plan (tests and targeted repros)."""
        return cls(seed=seed, faults=tuple(faults))

    @classmethod
    def generate(cls, seed: int,
                 kinds: "tuple[str, ...] | None" = None,
                 n_faults: int = 1,
                 max_hits: int = 4,
                 points: "tuple[str, ...] | None" = None) -> "FaultPlan":
        """Derive a schedule from *seed* — same seed, same schedule.

        Picks *n_faults* faults from *kinds* (default: every kind),
        each attached to one of its allowed points at a hit index in
        ``[0, max_hits)``.  ``kill_mid_drain`` always lands on hit
        ``max_hits - 1``: callers size *max_hits* to their run's
        dispatch count so the kill arrives at the drain-time dispatch.

        *points*, when given, restricts attachment to hook points the
        caller's workload actually reaches (a chaos scenario's
        ``reachable_points``) — kinds with no allowed point left are
        skipped, so generated faults are rarely vacuous.
        """
        if kinds is None:
            kinds = tuple(sorted(FAULT_SPECS))
        for kind in kinds:
            if kind not in FAULT_SPECS:
                raise CamConfigError(
                    f"unknown fault kind {kind!r}; known: "
                    f"{sorted(FAULT_SPECS)}"
                )
        if points is not None:
            for point in points:
                if point not in HOOK_POINTS:
                    raise CamConfigError(
                        f"unknown hook point {point!r}; known: "
                        f"{HOOK_POINTS}"
                    )
        if n_faults < 1:
            raise CamConfigError(
                f"n_faults must be positive, got {n_faults}"
            )
        if max_hits < 1:
            raise CamConfigError(
                f"max_hits must be positive, got {max_hits}"
            )
        rng = random.Random(seed)
        faults: "list[Fault]" = []
        taken: "set[tuple[str, int]]" = set()
        attempts = 0
        while len(faults) < n_faults and attempts < 64 * n_faults:
            attempts += 1
            kind = rng.choice(kinds)
            spec = FAULT_SPECS[kind]
            allowed = (spec.points if points is None else
                       tuple(p for p in spec.points if p in points))
            if not allowed:
                continue
            point = rng.choice(allowed)
            hit = (max_hits - 1 if kind == "kill_mid_drain"
                   else rng.randrange(max_hits))
            if (point, hit) in taken:
                continue
            taken.add((point, hit))
            faults.append(Fault(kind=kind, point=point, hit=hit,
                                arg=rng.randrange(1 << 16)))
        return cls(seed=seed, faults=tuple(faults))

    def describe(self) -> "dict[str, object]":
        """JSON-ready record of the whole schedule."""
        return {"seed": self.seed,
                "faults": [fault.describe() for fault in self.faults]}
