"""The chaos-run judge: surface-or-tolerate trichotomy + hygiene.

After every armed run the stack owes exactly one of three outcomes per
*fired* fault (scheduled faults whose hit index was never reached are
vacuous):

* **surfaced** — the run raised one of the fault's documented typed
  errors (:class:`~repro.errors.ServiceError` /
  :class:`~repro.errors.CamConfigError` /
  :class:`~repro.errors.LedgerCompactionError`, per
  :data:`~repro.faults.plan.FAULT_SPECS`), or the scenario handled
  such an error through a documented recovery (e.g. retrying an
  all-or-nothing submit) and still finished **bit-identical** to the
  fault-free baseline;
* **tolerated** — the run completed with results bit-identical
  (``==``) to the fault-free baseline;
* anything else is a **violation**: an undocumented error type, an
  untyped exception, or results that silently drifted.

On top of the trichotomy, :class:`InvariantChecker` asserts resource
hygiene around the chaos run: no leaked ``/dev/shm`` segments, no
spawned processes left behind, thread count back at its baseline, and
(when the scenario owns a catalog) all leases released.  Teardown is
asynchronous (worker joins, finalizers), so hygiene polls briefly
before declaring a leak.

Verdicts are pure data (:class:`ChaosVerdict`), JSON-ready for the
``tools/chaos_soak.py`` artifact, and deterministic for a given
(scenario, plan) pair — the property the soak harness replays.
"""

from __future__ import annotations

import gc
import multiprocessing
import os
import threading
import time
from dataclasses import dataclass, field

from repro.errors import ReproError
from repro.faults.hooks import arm
from repro.faults.plan import DOCUMENTED_ERRORS, Fault, FaultPlan

__all__ = ["ChaosVerdict", "InvariantChecker", "resource_snapshot"]

#: Seconds hygiene polling waits for asynchronous teardown (worker
#: joins, weakref finalizers) before declaring a leak.
_HYGIENE_TIMEOUT = 10.0
_HYGIENE_POLL = 0.05


@dataclass(frozen=True)
class ResourceSnapshot:
    """Point-in-time view of the leakable resources."""

    shm_names: "frozenset[str]"
    child_pids: "frozenset[int]"
    n_threads: int


def resource_snapshot() -> ResourceSnapshot:
    """Snapshot leakable process-wide resources (hygiene baseline)."""
    shm_dir = "/dev/shm"
    names: "frozenset[str]" = frozenset()
    if os.path.isdir(shm_dir):
        try:
            names = frozenset(os.listdir(shm_dir))
        except OSError:  # pragma: no cover - permissions
            names = frozenset()
    children = frozenset(
        process.pid for process in multiprocessing.active_children()
        if process.pid is not None
    )
    return ResourceSnapshot(shm_names=names, child_pids=children,
                            n_threads=threading.active_count())


def _hygiene_violations(before: ResourceSnapshot) -> "list[str]":
    """Poll until the resource state returns to *before* (or report)."""
    deadline = time.monotonic() + _HYGIENE_TIMEOUT
    while True:
        after = resource_snapshot()
        leaks: "list[str]" = []
        leaked_shm = after.shm_names - before.shm_names
        if leaked_shm:
            leaks.append(
                f"leaked /dev/shm segments: {sorted(leaked_shm)}"
            )
        leaked_children = after.child_pids - before.child_pids
        if leaked_children:
            leaks.append(
                f"leaked child processes: {sorted(leaked_children)}"
            )
        if after.n_threads > before.n_threads:
            leaks.append(
                f"leaked threads: {after.n_threads} alive vs "
                f"{before.n_threads} at baseline"
            )
        if not leaks or time.monotonic() >= deadline:
            return leaks
        time.sleep(_HYGIENE_POLL)


@dataclass(frozen=True)
class ChaosVerdict:
    """The judged outcome of one armed scenario run.

    ``verdict`` is ``"surfaced"``, ``"tolerated"`` or ``"violation"``;
    ``ok`` folds the verdict and the hygiene check into one boolean.
    ``fired`` lists the faults that actually triggered (firing order);
    ``detail`` explains violations in one line.
    """

    scenario: str
    plan_seed: int
    verdict: str
    ok: bool
    fired: "tuple[Fault, ...]"
    error_type: "str | None" = None
    detail: str = ""
    hygiene: "tuple[str, ...]" = field(default_factory=tuple)

    def describe(self) -> "dict[str, object]":
        """JSON-ready record (one row of the chaos artifact)."""
        return {
            "scenario": self.scenario,
            "plan_seed": self.plan_seed,
            "verdict": self.verdict,
            "ok": self.ok,
            "fired": [fault.describe() for fault in self.fired],
            "error_type": self.error_type,
            "detail": self.detail,
            "hygiene": list(self.hygiene),
        }


def judge(fired: "tuple[Fault, ...]",
          error: "BaseException | None",
          handled: "tuple[BaseException, ...]",
          result, baseline) -> "tuple[str, str | None, str]":
    """The trichotomy as a pure function — unit-testable in isolation.

    Returns ``(verdict, error_type_name, detail)`` given the fired
    faults, the exception that aborted the run (if any), the typed
    errors the scenario handled through documented recoveries, and the
    canonical results of the chaos and baseline runs.
    """
    if error is not None:
        if not isinstance(error, DOCUMENTED_ERRORS):
            return ("violation", type(error).__name__,
                    f"undocumented error type: {error!r}")
        allowed = any(fault.expected
                      and isinstance(error, fault.expected)
                      for fault in fired)
        if not allowed:
            return ("violation", type(error).__name__,
                    f"typed error without a fired fault documenting "
                    f"it: {error!r}")
        return ("surfaced", type(error).__name__, "")
    for exc in handled:
        if not isinstance(exc, DOCUMENTED_ERRORS):
            return ("violation", type(exc).__name__,
                    f"scenario handled an undocumented error: {exc!r}")
        if not any(fault.expected and isinstance(exc, fault.expected)
                   for fault in fired):
            return ("violation", type(exc).__name__,
                    f"handled error without a fired fault documenting "
                    f"it: {exc!r}")
    if result != baseline:
        return ("violation", None,
                "completed run drifted from the fault-free baseline")
    if handled:
        return ("surfaced", type(handled[0]).__name__, "")
    return ("tolerated", None, "")


class InvariantChecker:
    """Run a scenario fault-free and armed; judge the armed run.

    ``check(scenario, plan)`` runs the scenario once unarmed (the
    bit-identity baseline), snapshots the leakable resources, runs it
    again with *plan* armed, and returns a :class:`ChaosVerdict`
    combining the trichotomy with the hygiene poll.  Baselines are
    cached per scenario name — every plan against one scenario shares
    one fault-free reference run.
    """

    def __init__(self):
        self._baselines: "dict[str, object]" = {}

    def baseline(self, scenario):
        """The scenario's fault-free canonical result (cached)."""
        cached = self._baselines.get(scenario.name)
        if cached is None:
            outcome = scenario.run()
            if outcome.handled:
                raise ReproError(
                    f"scenario {scenario.name!r} handled errors on its "
                    f"fault-free baseline run: {outcome.handled!r}"
                )
            cached = outcome.result
            self._baselines[scenario.name] = cached
        return cached

    def check(self, scenario, plan: FaultPlan) -> ChaosVerdict:
        baseline = self.baseline(scenario)
        before = resource_snapshot()
        error: "BaseException | None" = None
        result = None
        handled: "tuple[BaseException, ...]" = ()
        with arm(plan) as injector:
            try:
                outcome = scenario.run()
                result = outcome.result
                handled = outcome.handled
            except ReproError as exc:
                error = exc
            except BaseException as exc:  # noqa: BLE001 - judged below
                error = exc
        fired = tuple(injector.fired)
        verdict, error_type, detail = judge(fired, error, handled,
                                            result, baseline)
        # Release the run's object graph before auditing hygiene: an
        # aborted run's traceback pins the scenario frames — service,
        # engine, queues and their semaphores — which would otherwise
        # read as a leak until this function returned.
        error = None
        result = None
        handled = ()
        gc.collect()
        hygiene = tuple(_hygiene_violations(before))
        return ChaosVerdict(
            scenario=scenario.name,
            plan_seed=plan.seed,
            verdict=verdict,
            ok=(verdict != "violation" and not hygiene),
            fired=fired,
            error_type=error_type,
            detail=detail,
            hygiene=hygiene,
        )
