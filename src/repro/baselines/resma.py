"""ReSMA baseline (DAC 2022): RRAM-crossbar comparison-matrix PIM.

ReSMA computes the comparison matrix in ReRAM crossbars, exploiting the
independence of anti-diagonal wavefronts, after an RRAM-CAM filtering
stage prunes candidate locations.  Two characteristics drive its cost model
(Section II-B of the ASMCap paper):

* latency scales with the number of wavefronts (``n + m - 1``), each
  one crossbar cycle;
* energy is dominated by writing intermediate DP values back into the
  crossbars — RRAM write-verify energy per cell update dwarfs the read
  energy ("incurs massive intermediate data and updates the crossbars
  frequently").

The functional path runs the real anti-diagonal traversal
(:mod:`repro.distance.comparison_matrix`) so decisions are exact, and
its measured work statistics feed the cost model.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro import constants
from repro.distance.comparison_matrix import AntiDiagonalTraversal
from repro.errors import ThresholdError
from repro.genome.sequence import DnaSequence


@dataclass(frozen=True)
class ResmaOutcome:
    """One read's exact decision and modelled crossbar cost."""

    distance: int
    decision: bool
    n_wavefronts: int
    cell_updates: int
    latency_ns: float
    energy_joules: float


class ResmaBaseline:
    """Anti-diagonal CM on RRAM crossbars, with CAM pre-filtering.

    Parameters
    ----------
    wavefront_ns:
        Crossbar cycle per anti-diagonal wavefront.
    cell_update_energy_j:
        Energy per DP cell update (RRAM write-verify dominated).
    """

    def __init__(self,
                 wavefront_ns: float = constants.RESMA_WAVEFRONT_NS,
                 cell_update_energy_j: float =
                 constants.RESMA_CELL_UPDATE_ENERGY_J,
                 filter_ns: float = constants.RESMA_FILTER_NS,
                 filter_energy_j: float = constants.RESMA_FILTER_ENERGY_J):
        if wavefront_ns <= 0.0:
            raise ThresholdError(
                f"wavefront_ns must be positive, got {wavefront_ns}"
            )
        if cell_update_energy_j <= 0.0:
            raise ThresholdError("cell_update_energy_j must be positive")
        self._wavefront_ns = wavefront_ns
        self._cell_energy = cell_update_energy_j
        self._filter_ns = filter_ns
        self._filter_energy = filter_energy_j

    def match(self, segment: DnaSequence, read: DnaSequence,
              threshold: int) -> ResmaOutcome:
        """Exact decision with crossbar work statistics and costs."""
        if threshold < 0:
            raise ThresholdError(
                f"threshold must be non-negative, got {threshold}"
            )
        traversal = AntiDiagonalTraversal.run(segment, read)
        stats = traversal.stats
        latency = (self._filter_ns
                   + stats.n_wavefronts * self._wavefront_ns)
        energy = (self._filter_energy
                  + stats.total_cell_updates * self._cell_energy)
        return ResmaOutcome(
            distance=traversal.distance,
            decision=traversal.distance <= threshold,
            n_wavefronts=stats.n_wavefronts,
            cell_updates=stats.total_cell_updates,
            latency_ns=latency,
            energy_joules=energy,
        )

    def read_latency_ns(self, read_length: int) -> float:
        """Modelled per-read latency (filter + one crossbar CM)."""
        if read_length <= 0:
            raise ThresholdError(
                f"read_length must be positive, got {read_length}"
            )
        wavefronts = 2 * read_length - 1
        return self._filter_ns + wavefronts * self._wavefront_ns

    def read_energy_joules(self, read_length: int) -> float:
        """Modelled per-read energy."""
        updates = read_length * read_length
        return self._filter_energy + updates * self._cell_energy
