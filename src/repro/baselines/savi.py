"""SaVI baseline (ICCAD 2020): TCAM seed-and-vote read mapping.

SaVI splits each read into k-mers, finds each k-mer's exact locations
in the reference with TCAM searches, and *votes*: every k-mer hit at
reference position ``p`` votes for alignment origin ``p - offset``.
The origin with the most votes wins; the read maps there when the vote
count clears a minimum.  Voting is faster than extending but loses
accuracy (the ~93.8 % the paper quotes), and exact k-mer matching makes
the approach brittle under edits — each edit breaks every k-mer that
spans it.

The functional path uses the real :class:`~repro.genome.kmer.KmerIndex`
so the accuracy behaviour is genuine; the cost model charges one TCAM
search per k-mer plus a voting step.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass

import numpy as np

from repro import constants
from repro.errors import DatasetError, ThresholdError
from repro.genome.kmer import KmerIndex, iter_kmers
from repro.genome.sequence import DnaSequence


@dataclass(frozen=True)
class SaviOutcome:
    """One read's seed-and-vote result and modelled TCAM cost."""

    origin: "int | None"
    votes: int
    n_kmers: int
    latency_ns: float
    energy_joules: float

    @property
    def mapped(self) -> bool:
        return self.origin is not None


class SaviBaseline:
    """Seed-and-vote mapper over a k-mer index with TCAM costs.

    Parameters
    ----------
    reference:
        Reference sequence to index.
    k:
        Seed length (paper-era tools use ~16).
    stride:
        Distance between consecutive seeds; ``k`` gives non-overlapping
        seeds (SaVI's configuration), 1 gives every k-mer.
    min_votes:
        Minimum winning vote count to call the read mapped.
    position_tolerance:
        Votes within this many bases of each other are pooled (absorbs
        small indel-induced shifts).
    """

    def __init__(self, reference: DnaSequence,
                 k: int = constants.SAVI_KMER_LENGTH,
                 stride: "int | None" = None,
                 min_votes: int = 2,
                 position_tolerance: int = 3):
        if min_votes < 1:
            raise ThresholdError(f"min_votes must be >= 1, got {min_votes}")
        if position_tolerance < 0:
            raise ThresholdError("position_tolerance must be non-negative")
        self._k = k
        self._stride = k if stride is None else stride
        if self._stride < 1:
            raise ThresholdError(f"stride must be >= 1, got {self._stride}")
        self._min_votes = min_votes
        self._tolerance = position_tolerance
        self._index = KmerIndex.build(reference, k)

    @property
    def index(self) -> KmerIndex:
        return self._index

    @property
    def k(self) -> int:
        return self._k

    def map_read(self, read: DnaSequence) -> SaviOutcome:
        """Seed, look up, vote; returns the winning origin (or None)."""
        if len(read) < self._k:
            raise DatasetError(
                f"read of length {len(read)} shorter than k = {self._k}"
            )
        votes: Counter[int] = Counter()
        n_kmers = 0
        for offset, kmer in iter_kmers(read, self._k):
            if offset % self._stride != 0:
                continue
            n_kmers += 1
            for position in self._index.lookup(kmer):
                votes[position - offset] += 1
        origin, count = self._tally(votes)
        latency = (n_kmers * constants.SAVI_TCAM_SEARCH_NS
                   + constants.SAVI_VOTE_NS)
        energy = (n_kmers * constants.SAVI_TCAM_SEARCH_ENERGY_J
                  + constants.SAVI_VOTE_ENERGY_J)
        return SaviOutcome(origin=origin, votes=count, n_kmers=n_kmers,
                           latency_ns=latency, energy_joules=energy)

    def _tally(self, votes: "Counter[int]") -> tuple["int | None", int]:
        """Pool nearby origins and pick the winner."""
        if not votes:
            return None, 0
        pooled: Counter[int] = Counter()
        for origin, count in votes.items():
            bucket = origin // max(1, self._tolerance + 1)
            pooled[bucket] += count
        bucket, count = pooled.most_common(1)[0]
        if count < self._min_votes:
            return None, count
        # Representative origin: the highest-voted raw origin in the bucket.
        in_bucket = {o: c for o, c in votes.items()
                     if o // max(1, self._tolerance + 1) == bucket}
        origin = max(in_bucket, key=in_bucket.get)
        return origin, count

    def decisions_for_segments(self, read: DnaSequence, n_segments: int,
                               segment_length: int) -> np.ndarray:
        """Per-segment match decisions compatible with the CAM matchers.

        The read is declared matched to the segment containing its
        winning origin (within tolerance of the segment start).
        """
        outcome = self.map_read(read)
        decisions = np.zeros(n_segments, dtype=bool)
        if outcome.origin is None:
            return decisions
        segment = outcome.origin // segment_length
        offset_in_segment = outcome.origin % segment_length
        near_start = (offset_in_segment <= self._tolerance
                      or segment_length - offset_in_segment <= self._tolerance)
        if 0 <= segment < n_segments and near_start:
            decisions[segment] = True
        return decisions

    def read_latency_ns(self, read_length: int) -> float:
        """Modelled per-read latency."""
        n_kmers = max(1, (read_length - self._k) // self._stride + 1)
        return (n_kmers * constants.SAVI_TCAM_SEARCH_NS
                + constants.SAVI_VOTE_NS)

    def read_energy_joules(self, read_length: int) -> float:
        """Modelled per-read energy."""
        n_kmers = max(1, (read_length - self._k) // self._stride + 1)
        return (n_kmers * constants.SAVI_TCAM_SEARCH_ENERGY_J
                + constants.SAVI_VOTE_ENERGY_J)
