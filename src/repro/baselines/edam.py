"""EDAM baseline (ISCA 2022): current-domain ML-CAM ASM accelerator.

EDAM introduced the neighbour-tolerant matching rule ASMCap inherits
(the ED* of Fig. 2) but senses the mismatch count in the *current
domain*: the matchline is pre-charged, every mismatched cell discharges
it, and the droop is sampled after a fixed interval.  Consequences
reproduced by this model (Sections II-C, III, V):

* per-cell current variation (sigma_I/mu_I = 2.5 %) plus
  timing-dependent sampling limit it to 44 distinguishable states —
  sensing a 256-cell row is noisy near the threshold;
* every search pays a pre-charge phase (latency and energy);
* the sampled decision needs a sample-and-hold, stretching the search
  cycle to 2.4 ns vs ASMCap's 0.9 ns (Table I).

The functional matcher is a plain ED* decision over a current-domain
:class:`~repro.cam.array.CamArray` — no HDAC, no TASR.  Optionally the
original *Sequence Rotation* (SR) of the EDAM paper can be enabled: it
rotates unconditionally (no ``Tl`` guard), which is exactly what TASR
improves on; the ablation benches use it.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro import constants
from repro.cam.array import CamArray, SearchResult
from repro.cam.cell import MatchMode
from repro.core.tasr import rotation_offsets
from repro.errors import CamConfigError


@dataclass(frozen=True)
class EdamOutcome:
    """Decisions and costs for one EDAM read match."""

    decisions: np.ndarray
    n_searches: int
    energy_joules: float
    latency_ns: float


class EdamMatcher:
    """Functional EDAM matcher over a current-domain array.

    Parameters
    ----------
    array:
        A ``domain="current"`` CAM array (constructed here if omitted).
    enable_sr:
        Enable EDAM's unconditional Sequence Rotation with ``nr``
        rotations per direction.
    """

    def __init__(self, array: "CamArray | None" = None,
                 rows: int = constants.ARRAY_ROWS,
                 cols: int = constants.ARRAY_COLS,
                 enable_sr: bool = False,
                 sr_nr: int = constants.TASR_NR,
                 sr_direction: str = "both",
                 noisy: bool = True,
                 seed: int = 0):
        if array is None:
            array = CamArray(rows=rows, cols=cols, domain="current",
                             noisy=noisy, seed=seed)
        if array.domain != "current":
            raise CamConfigError(
                "EDAM requires a current-domain array, got "
                f"{array.domain!r}"
            )
        self._array = array
        self._enable_sr = enable_sr
        self._sr_nr = sr_nr
        self._sr_direction = sr_direction

    @property
    def array(self) -> CamArray:
        return self._array

    @property
    def enable_sr(self) -> bool:
        return self._enable_sr

    def store(self, segments: np.ndarray) -> None:
        self._array.store(segments)

    def match(self, read: np.ndarray, threshold: int) -> EdamOutcome:
        """Match one read at threshold ``T`` (plain ED*, optional SR)."""
        # Pre-charge *energy* is already inside the array's current-domain
        # search energy (CamArray._search_energy); only the pre-charge
        # *latency* phase is added here.
        base: SearchResult = self._array.search(read, threshold,
                                                MatchMode.ED_STAR)
        decisions = base.matches.copy()
        n_searches = 1
        energy = base.energy_joules
        latency = base.latency_ns + constants.EDAM_PRECHARGE_TIME_NS
        if self._enable_sr:
            for offset in rotation_offsets(self._sr_nr, self._sr_direction):
                rotated = self._array.search_rotated(
                    read, threshold, offset, MatchMode.ED_STAR
                )
                decisions |= rotated.matches
                n_searches += 1
                energy += rotated.energy_joules
                latency += (rotated.latency_ns
                            + constants.EDAM_PRECHARGE_TIME_NS)
        return EdamOutcome(decisions=decisions, n_searches=n_searches,
                           energy_joules=energy, latency_ns=latency)


def edam_search_energy_per_array(mismatch_fraction: float =
                                 constants.TYPICAL_ED_STAR_MISMATCH_FRACTION,
                                 rows: int = constants.ARRAY_ROWS,
                                 cols: int = constants.ARRAY_COLS) -> float:
    """Closed-form EDAM per-search array energy at typical activity."""
    if not 0.0 <= mismatch_fraction <= 1.0:
        raise CamConfigError("mismatch_fraction must be in [0, 1]")
    precharge = constants.EDAM_ML_PRECHARGE_CAP_F * constants.VDD_VOLTS**2 * rows
    discharge = (constants.EDAM_DISCHARGE_ENERGY_PER_MISMATCH_J
                 * mismatch_fraction * cols * rows)
    sense = constants.SA_ENERGY_PER_ROW_J * rows
    return precharge + discharge + sense


def edam_issue_period_ns(rows: int = constants.ARRAY_ROWS,
                         cols: int = constants.ARRAY_COLS) -> float:
    """Steady-state search period implied by EDAM's Table-I cell power.

    Mirrors :func:`repro.arch.power.steady_state_search_period_ns` for
    the current domain: period = per-search energy / average power.
    """
    energy = edam_search_energy_per_array(rows=rows, cols=cols)
    power = constants.EDAM_CELL_POWER_UW * 1e-6 * rows * cols
    return energy / power * 1e9
