"""EDAM baseline (ISCA 2022): current-domain ML-CAM ASM accelerator.

EDAM introduced the neighbour-tolerant matching rule ASMCap inherits
(the ED* of Fig. 2) but senses the mismatch count in the *current
domain*: the matchline is pre-charged, every mismatched cell discharges
it, and the droop is sampled after a fixed interval.  Consequences
reproduced by this model (Sections II-C, III, V):

* per-cell current variation (sigma_I/mu_I = 2.5 %) plus
  timing-dependent sampling limit it to 44 distinguishable states —
  sensing a 256-cell row is noisy near the threshold;
* every search pays a pre-charge phase (latency and energy);
* the sampled decision needs a sample-and-hold, stretching the search
  cycle to 2.4 ns vs ASMCap's 0.9 ns (Table I).

The functional matcher is a plain ED* decision over a current-domain
:class:`~repro.cam.array.CamArray` — no HDAC, no TASR.  Optionally the
original *Sequence Rotation* (SR) of the EDAM paper can be enabled: it
rotates unconditionally (no ``Tl`` guard), which is exactly what TASR
improves on; the ablation benches use it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro import constants
from repro.cam.array import CamArray, SearchResult
from repro.cam.cell import MatchMode
from repro.core.tasr import rotation_offsets
from repro.errors import CamConfigError

#: Pass tags separating one query's keyed noise streams (mirrors the
#: ASMCap matcher's tags; streams never mix across arrays because the
#: array seed is folded in first).
_PASS_ED_STAR = 0
_PASS_ROTATION = 512


@dataclass(frozen=True)
class EdamOutcome:
    """Decisions and costs for one EDAM read match."""

    decisions: np.ndarray
    n_searches: int
    energy_joules: float
    latency_ns: float


class EdamMatcher:
    """Functional EDAM matcher over a current-domain array.

    Parameters
    ----------
    array:
        A ``domain="current"`` CAM array (constructed here if omitted).
    enable_sr:
        Enable EDAM's unconditional Sequence Rotation with ``nr``
        rotations per direction.
    """

    def __init__(self, array: "CamArray | None" = None,
                 rows: int = constants.ARRAY_ROWS,
                 cols: int = constants.ARRAY_COLS,
                 enable_sr: bool = False,
                 sr_nr: int = constants.TASR_NR,
                 sr_direction: str = "both",
                 noisy: bool = True,
                 seed: int = 0):
        if array is None:
            array = CamArray(rows=rows, cols=cols, domain="current",
                             noisy=noisy, seed=seed)
        if array.domain != "current":
            raise CamConfigError(
                "EDAM requires a current-domain array, got "
                f"{array.domain!r}"
            )
        self._array = array
        self._enable_sr = enable_sr
        self._sr_nr = sr_nr
        self._sr_direction = sr_direction

    @property
    def array(self) -> CamArray:
        return self._array

    @property
    def enable_sr(self) -> bool:
        return self._enable_sr

    def store(self, segments: np.ndarray) -> None:
        self._array.store(segments)

    @staticmethod
    def _noise_key(query_key: "int | None",
                   pass_tag: int) -> "tuple[int, int] | None":
        if query_key is None:
            return None
        return (int(query_key), pass_tag)

    def match(self, read: np.ndarray, threshold: int,
              query_key: "int | None" = None) -> EdamOutcome:
        """Match one read at threshold ``T`` (plain ED*, optional SR).

        With a ``query_key`` the variation noise comes from keyed
        streams, making the outcome bit-identical to row ``query_key``
        of a :meth:`match_sweep` call that used the same key —
        regardless of which other reads or thresholds rode along.
        """
        # Pre-charge *energy* is already inside the array's current-domain
        # search energy (repro.cost.views); only the pre-charge
        # *latency* phase is added here.
        base: SearchResult = self._array.search(
            read, threshold, MatchMode.ED_STAR,
            noise_key=self._noise_key(query_key, _PASS_ED_STAR),
        )
        decisions = base.matches.copy()
        n_searches = 1
        energy = base.energy_joules
        latency = base.latency_ns + constants.EDAM_PRECHARGE_TIME_NS
        if self._enable_sr:
            for offset in rotation_offsets(self._sr_nr, self._sr_direction):
                rotated = self._array.search_rotated(
                    read, threshold, offset, MatchMode.ED_STAR,
                    noise_key=self._noise_key(query_key,
                                              _PASS_ROTATION + offset),
                )
                decisions |= rotated.matches
                n_searches += 1
                energy += rotated.energy_joules
                latency += (rotated.latency_ns
                            + constants.EDAM_PRECHARGE_TIME_NS)
        return EdamOutcome(decisions=decisions, n_searches=n_searches,
                           energy_joules=energy, latency_ns=latency)

    def match_sweep(self, reads: np.ndarray,
                    thresholds: "Sequence[int] | np.ndarray",
                    query_keys: "Sequence[int] | None" = None) -> np.ndarray:
        """Decisions for a ``(B, N)`` block over a whole threshold sweep.

        EDAM has no threshold-dependent escalation, so its sweep is the
        pure form of the trick: one ED* count + keyed-noise pass (plus
        one rotated pass per SR offset when SR is enabled — EDAM's SR
        fires unconditionally, so every threshold shares them) and the
        whole threshold vector applied as sense-amp reference
        comparisons.  Slice ``t``, row ``q`` is bit-identical to
        ``match(reads[q], thresholds[t], query_key=keys[q])``.
        """
        reads = np.asarray(reads, dtype=np.uint8)
        if reads.ndim != 2:
            raise CamConfigError(
                f"match_sweep needs a (B, N) block, got shape {reads.shape}"
            )
        n_queries = reads.shape[0]
        thresholds = np.asarray(thresholds, dtype=int)
        if query_keys is None:
            keys = np.arange(n_queries, dtype=np.int64)
        else:
            if len(query_keys) != n_queries:
                raise CamConfigError(
                    f"{len(query_keys)} query keys for {n_queries} reads"
                )
            keys = np.asarray([int(k) for k in query_keys], dtype=np.int64)

        def pass_keys(tag: int) -> np.ndarray:
            return np.column_stack(
                (keys, np.full(n_queries, tag, dtype=np.int64))
            )

        base = self._array.search_sweep(
            reads, thresholds, MatchMode.ED_STAR,
            noise_keys=pass_keys(_PASS_ED_STAR),
        )
        decisions = base.matches.copy()
        if self._enable_sr:
            for offset in rotation_offsets(self._sr_nr, self._sr_direction):
                rotated = self._array.search_sweep(
                    np.roll(reads, -offset, axis=1), thresholds,
                    MatchMode.ED_STAR,
                    noise_keys=pass_keys(_PASS_ROTATION + offset),
                    rotation=offset,
                )
                decisions |= rotated.matches
        return decisions


def edam_search_energy_per_array(mismatch_fraction: float =
                                 constants.TYPICAL_ED_STAR_MISMATCH_FRACTION,
                                 rows: int = constants.ARRAY_ROWS,
                                 cols: int = constants.ARRAY_COLS) -> float:
    """Closed-form EDAM per-search array energy at typical activity."""
    if not 0.0 <= mismatch_fraction <= 1.0:
        raise CamConfigError("mismatch_fraction must be in [0, 1]")
    precharge = constants.EDAM_ML_PRECHARGE_CAP_F * constants.VDD_VOLTS**2 * rows
    discharge = (constants.EDAM_DISCHARGE_ENERGY_PER_MISMATCH_J
                 * mismatch_fraction * cols * rows)
    sense = constants.SA_ENERGY_PER_ROW_J * rows
    return precharge + discharge + sense


def edam_issue_period_ns(rows: int = constants.ARRAY_ROWS,
                         cols: int = constants.ARRAY_COLS) -> float:
    """Steady-state search period implied by EDAM's Table-I cell power.

    Mirrors :func:`repro.arch.power.steady_state_search_period_ns` for
    the current domain: period = per-search energy / average power.
    """
    energy = edam_search_energy_per_array(rows=rows, cols=cols)
    power = constants.EDAM_CELL_POWER_UW * 1e-6 * rows * cols
    return energy / power * 1e9
