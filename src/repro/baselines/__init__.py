"""Comparator systems: EDAM, CM-CPU, ReSMA, SaVI, Kraken-like.

Each baseline has a *functional* path (it really computes matches, so
accuracy comparisons are genuine) and a *cost model* (per-read latency
and energy at the modelled technology's operating points).
"""

from repro.baselines.cm_cpu import CmCpuBaseline, CmCpuOutcome
from repro.baselines.edam import (
    EdamMatcher,
    EdamOutcome,
    edam_issue_period_ns,
    edam_search_energy_per_array,
)
from repro.baselines.kraken import KrakenLikeClassifier, KrakenOutcome
from repro.baselines.resma import ResmaBaseline, ResmaOutcome
from repro.baselines.savi import SaviBaseline, SaviOutcome

__all__ = [
    "CmCpuBaseline",
    "CmCpuOutcome",
    "EdamMatcher",
    "EdamOutcome",
    "KrakenLikeClassifier",
    "KrakenOutcome",
    "ResmaBaseline",
    "ResmaOutcome",
    "SaviBaseline",
    "SaviOutcome",
    "edam_issue_period_ns",
    "edam_search_energy_per_array",
]
