"""Kraken2-like exact k-mer classifier — the paper's F1 normalizer.

The paper normalises F1 scores by ``F1(Kraken2)`` (Section V-A).
Kraken2 classifies a read by looking up each of its k-mers in a
reference database and requiring a sufficient fraction of hits
("confidence").  Exact k-mer matching is the crucial property: a single
edit breaks every k-mer spanning it, so with k around 35 even the
paper's mild error conditions destroy most k-mers — which is precisely
why exact matching scores so much lower than ASM on erroneous reads
(the 4.5-7.7x normalized-F1 headroom of Fig. 7).

This model reproduces that mechanism with a per-(read, segment)
decision so it plugs into the same confusion-matrix evaluation as the
CAM matchers: a segment is called a match when enough of the read's
k-mers occur in that segment.

**Implementation.**  Everything is vectorised and *exact* — no k-mer
hashing.  The index assigns every distinct reference k-mer window an
integer id by sorting the raw ``(k,)`` byte windows (a void-dtype
``np.unique``), and stores a dense id -> segment membership table.
Classification slides windows over the read block, finds each window's
id with one ``searchsorted``, and gathers/sums membership rows — so
:meth:`KrakenLikeClassifier.classify_batch` scores a whole ``(B, L)``
read block without any per-k-mer Python.  The scalar
:meth:`KrakenLikeClassifier.classify` is the batch-of-one special case,
guaranteeing the two agree bit-for-bit.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from numpy.lib.stride_tricks import sliding_window_view

from repro.errors import DatasetError, ThresholdError
from repro.genome.sequence import DnaSequence

#: Kraken2's default k-mer length.
DEFAULT_K = 35


@dataclass(frozen=True)
class KrakenOutcome:
    """Per-segment hit fractions for one read."""

    hit_fractions: np.ndarray
    decisions: np.ndarray
    n_kmers: int


@dataclass(frozen=True)
class KrakenBatchOutcome:
    """Per-(read, segment) hit fractions for a read block."""

    hit_fractions: np.ndarray
    decisions: np.ndarray
    n_kmers: int


def _window_keys(windows: np.ndarray) -> np.ndarray:
    """View fixed-width uint8 windows as one void key per row.

    Void keys compare as raw bytes, which makes sorting, ``unique``
    and ``searchsorted`` over k-mer windows exact without packing
    k-mers into (over-wide) integers.
    """
    windows = np.ascontiguousarray(windows)
    return windows.view(np.dtype((np.void, windows.shape[1]))).ravel()


class KrakenLikeClassifier:
    """Exact k-mer membership classifier over stored segments.

    Parameters
    ----------
    segments:
        ``(M, L)`` uint8 matrix of stored reference segments.
    k:
        k-mer length (Kraken2 default 35).
    confidence:
        Minimum fraction of the read's k-mers that must occur in a
        segment for a match call (Kraken2's confidence threshold).  The
        default 0.9 makes the classifier behave like Kraken2 on a
        single-reference database: one interior edit already destroys
        ~k of the read's k-mers (fraction drops to ~0.84 for k = 35 on
        256-base reads), so only near-exact reads classify — which is
        what makes exact matching score so poorly on erroneous reads.
    """

    def __init__(self, segments: np.ndarray, k: int = DEFAULT_K,
                 confidence: float = 0.9):
        segments = np.asarray(segments, dtype=np.uint8)
        if segments.ndim != 2:
            raise DatasetError("segments must be a 2-D matrix")
        if not 0.0 < confidence <= 1.0:
            raise ThresholdError(
                f"confidence must be in (0, 1], got {confidence}"
            )
        if k > segments.shape[1]:
            raise DatasetError(
                f"k = {k} exceeds segment length {segments.shape[1]}"
            )
        self._k = k
        self._confidence = confidence
        self._n_segments = int(segments.shape[0])
        if self._n_segments:
            windows = sliding_window_view(segments, k, axis=1)
            n_windows = windows.shape[1]
            keys = _window_keys(windows.reshape(-1, k))
            self._unique_kmers, inverse = np.unique(keys,
                                                    return_inverse=True)
            # Dense id -> segment membership; the extra trailing row
            # stays all-zero and absorbs missing (non-reference) ids.
            membership = np.zeros(
                (self._unique_kmers.shape[0] + 1, self._n_segments),
                dtype=np.uint8,
            )
            segment_ids = np.repeat(np.arange(self._n_segments), n_windows)
            membership[inverse.ravel(), segment_ids] = 1
            self._membership = membership
        else:
            self._unique_kmers = np.empty(0, dtype=np.dtype((np.void, k)))
            self._membership = np.zeros((1, 0), dtype=np.uint8)

    @property
    def k(self) -> int:
        return self._k

    @property
    def n_segments(self) -> int:
        return self._n_segments

    def _window_ids(self, codes: np.ndarray) -> np.ndarray:
        """``(B, n_kmers)`` membership-row ids for a read block.

        Windows absent from the reference map to the table's all-zero
        trailing row.
        """
        windows = sliding_window_view(codes, self._k, axis=1)
        keys = _window_keys(windows.reshape(-1, self._k))
        missing = self._unique_kmers.shape[0]
        if missing == 0:
            return np.zeros((codes.shape[0], windows.shape[1]),
                            dtype=np.intp)
        positions = np.searchsorted(self._unique_kmers, keys)
        clipped = np.minimum(positions, missing - 1)
        found = self._unique_kmers[clipped] == keys
        ids = np.where(found, clipped, missing)
        return ids.reshape(codes.shape[0], windows.shape[1])

    def classify_batch(self, reads: np.ndarray) -> KrakenBatchOutcome:
        """Hit fractions and decisions for a ``(B, L)`` read block."""
        reads = np.asarray(reads, dtype=np.uint8)
        if reads.ndim != 2:
            raise DatasetError(
                f"classify_batch needs a (B, L) block, got shape "
                f"{reads.shape}"
            )
        if reads.shape[1] < self._k:
            raise DatasetError(
                f"reads of length {reads.shape[1]} shorter than "
                f"k = {self._k}"
            )
        ids = self._window_ids(reads)
        n_kmers = int(ids.shape[1])
        hits = self._membership[ids].sum(axis=1, dtype=np.int32)
        fractions = hits / n_kmers
        return KrakenBatchOutcome(
            hit_fractions=fractions,
            decisions=fractions >= self._confidence,
            n_kmers=n_kmers,
        )

    def classify(self, read: DnaSequence) -> KrakenOutcome:
        """Hit fractions and match decisions against every segment."""
        if len(read) < self._k:
            raise DatasetError(
                f"read of length {len(read)} shorter than k = {self._k}"
            )
        batch = self.classify_batch(read.codes[None, :])
        return KrakenOutcome(
            hit_fractions=batch.hit_fractions[0],
            decisions=batch.decisions[0],
            n_kmers=batch.n_kmers,
        )
