"""Kraken2-like exact k-mer classifier — the paper's F1 normalizer.

The paper normalises F1 scores by ``F1(Kraken2)`` (Section V-A).
Kraken2 classifies a read by looking up each of its k-mers in a
reference database and requiring a sufficient fraction of hits
("confidence").  Exact k-mer matching is the crucial property: a single
edit breaks every k-mer spanning it, so with k around 35 even the
paper's mild error conditions destroy most k-mers — which is precisely
why exact matching scores so much lower than ASM on erroneous reads
(the 4.5-7.7x normalized-F1 headroom of Fig. 7).

This model reproduces that mechanism with a per-(read, segment)
decision so it plugs into the same confusion-matrix evaluation as the
CAM matchers: a segment is called a match when enough of the read's
k-mers occur in that segment.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import DatasetError, ThresholdError
from repro.genome.kmer import iter_kmers, kmer_profile
from repro.genome.sequence import DnaSequence

#: Kraken2's default k-mer length.
DEFAULT_K = 35


@dataclass(frozen=True)
class KrakenOutcome:
    """Per-segment hit fractions for one read."""

    hit_fractions: np.ndarray
    decisions: np.ndarray
    n_kmers: int


class KrakenLikeClassifier:
    """Exact k-mer membership classifier over stored segments.

    Parameters
    ----------
    segments:
        ``(M, L)`` uint8 matrix of stored reference segments.
    k:
        k-mer length (Kraken2 default 35).
    confidence:
        Minimum fraction of the read's k-mers that must occur in a
        segment for a match call (Kraken2's confidence threshold).  The
        default 0.9 makes the classifier behave like Kraken2 on a
        single-reference database: one interior edit already destroys
        ~k of the read's k-mers (fraction drops to ~0.84 for k = 35 on
        256-base reads), so only near-exact reads classify — which is
        what makes exact matching score so poorly on erroneous reads.
    """

    def __init__(self, segments: np.ndarray, k: int = DEFAULT_K,
                 confidence: float = 0.9):
        segments = np.asarray(segments, dtype=np.uint8)
        if segments.ndim != 2:
            raise DatasetError("segments must be a 2-D matrix")
        if not 0.0 < confidence <= 1.0:
            raise ThresholdError(
                f"confidence must be in (0, 1], got {confidence}"
            )
        if k > segments.shape[1]:
            raise DatasetError(
                f"k = {k} exceeds segment length {segments.shape[1]}"
            )
        self._k = k
        self._confidence = confidence
        self._segment_kmers = [
            frozenset(kmer_profile(DnaSequence(row), k))
            for row in segments
        ]

    @property
    def k(self) -> int:
        return self._k

    @property
    def n_segments(self) -> int:
        return len(self._segment_kmers)

    def classify(self, read: DnaSequence) -> KrakenOutcome:
        """Hit fractions and match decisions against every segment."""
        if len(read) < self._k:
            raise DatasetError(
                f"read of length {len(read)} shorter than k = {self._k}"
            )
        read_kmers = [kmer for _, kmer in iter_kmers(read, self._k)]
        n_kmers = len(read_kmers)
        hits = np.array([
            sum(1 for kmer in read_kmers if kmer in segment_set)
            for segment_set in self._segment_kmers
        ], dtype=float)
        fractions = hits / n_kmers
        return KrakenOutcome(
            hit_fractions=fractions,
            decisions=fractions >= self._confidence,
            n_kmers=n_kmers,
        )
