"""CM-CPU baseline: exact comparison-matrix edit distance on a CPU.

The paper's software baseline computes edit distance with the classical
``O(n*m)`` comparison matrix on an i9-10980XE (Section V-A).  Our
functional path computes the *same answer* with the Myers bit-parallel
kernel (fast enough for Python); the **cost model** charges the full
``n*m`` DP cell count at a calibrated scalar update rate, because that
is the work the baseline being modelled performs.

Scope note (recorded in DESIGN.md): per read, the CM baseline evaluates
the candidate reference window — one ``m x m`` DP — matching how the
paper's speedup anchors scale.  The CAM accelerators additionally
*locate* candidates among all stored segments in the same search, so
this accounting is conservative in the CPU's favour.
"""

from __future__ import annotations

from dataclasses import dataclass


from repro import constants
from repro.distance.myers import myers_edit_distance
from repro.errors import ThresholdError
from repro.genome.sequence import DnaSequence


@dataclass(frozen=True)
class CmCpuOutcome:
    """One read's exact-distance decision and modelled CPU cost."""

    distance: int
    decision: bool
    cell_updates: int
    latency_ns: float
    energy_joules: float


class CmCpuBaseline:
    """Exact CM computation with an i9-class cost model.

    Parameters
    ----------
    cell_rate:
        DP cell updates per second.
    power_w:
        Package power while computing.
    """

    def __init__(self,
                 cell_rate: float = constants.CM_CPU_CELL_UPDATES_PER_SECOND,
                 power_w: float = constants.CM_CPU_POWER_W):
        if cell_rate <= 0.0:
            raise ThresholdError(f"cell_rate must be positive, got {cell_rate}")
        if power_w <= 0.0:
            raise ThresholdError(f"power_w must be positive, got {power_w}")
        self._cell_rate = cell_rate
        self._power_w = power_w

    def match(self, segment: DnaSequence, read: DnaSequence,
              threshold: int) -> CmCpuOutcome:
        """Exact decision ``ED(segment, read) <= T`` with CPU costs."""
        if threshold < 0:
            raise ThresholdError(
                f"threshold must be non-negative, got {threshold}"
            )
        distance = myers_edit_distance(segment, read)
        cells = len(segment) * len(read)
        latency_s = cells / self._cell_rate
        return CmCpuOutcome(
            distance=distance,
            decision=distance <= threshold,
            cell_updates=cells,
            latency_ns=latency_s * 1e9,
            energy_joules=latency_s * self._power_w,
        )

    def read_latency_ns(self, read_length: int) -> float:
        """Modelled per-read latency (one ``m x m`` DP)."""
        if read_length <= 0:
            raise ThresholdError(
                f"read_length must be positive, got {read_length}"
            )
        return read_length * read_length / self._cell_rate * 1e9

    def read_energy_joules(self, read_length: int) -> float:
        """Modelled per-read energy."""
        return self.read_latency_ns(read_length) * 1e-9 * self._power_w
