"""Physical and architectural constants for the ASMCap reproduction.

Two kinds of constants live here:

1. **Paper-specified parameters** — values the paper states explicitly
   (array geometry, supply voltage, variation coefficients, the HDAC and
   TASR hyper-parameters).  These feed the behavioural models; changing
   them changes model *outputs*.

2. **Table-I calibration constants** — measured silicon numbers (cell
   area, search time, average power) that our behavioural circuit model
   cannot derive from first principles without a transistor-level
   simulator.  They anchor the absolute scale of the latency/energy/area
   models; every *ratio* the experiments report is still produced by the
   models, not hard-coded.

Sources are cited next to each value (section / table of the paper).
"""

from __future__ import annotations

# --------------------------------------------------------------------------
# Supply / technology (Section V-A, Table I)
# --------------------------------------------------------------------------

VDD_VOLTS = 1.2
"""Supply and search voltage for both EDAM and ASMCap (Table I)."""

TECHNOLOGY_NM = 65
"""CMOS technology node used by both designs (Table I)."""

MIM_CAPACITOR_FARADS = 2e-15
"""2 fF MIM capacitor per ASMCap cell (Section V-A)."""

MIM_CAPACITOR_AREA_UM2 = 1.4
"""Area of a 65 nm 2 fF MIM capacitor; placed on top of the cell so it
adds no footprint (Section V-C)."""

# --------------------------------------------------------------------------
# Array geometry (Section V-A)
# --------------------------------------------------------------------------

ARRAY_ROWS = 256
"""M: reference segments per array."""

ARRAY_COLS = 256
"""N: bases per row == read length processed without fragmentation."""

ARRAY_COUNT = 512
"""Number of arrays in the evaluated system (64 Mb total capacity)."""

READ_LENGTH = 256
"""Read length used throughout the evaluation (Section V-A)."""

# --------------------------------------------------------------------------
# Variation models (Section V-D)
# --------------------------------------------------------------------------

ASMCAP_CAPACITOR_SIGMA = 0.014
"""Relative capacitor variation sigma_C/mu_C = 1.4 % (Section V-D)."""

EDAM_CURRENT_SIGMA = 0.025
"""Relative per-cell discharge-current variation 2.5 % (Section V-D)."""

SIGMA_SEPARATION = 3.0
"""The paper's '3-sigma constraint': adjacent V_ML levels must be at
least 3 sigma away from the decision boundary on each side (so adjacent
level means are >= 6 sigma apart)."""

ASMCAP_DISTINGUISHABLE_STATES = 566
"""Distinguishable V_ML states for ASMCap quoted in Section V-D."""

EDAM_DISTINGUISHABLE_STATES = 44
"""Distinguishable V_ML states for EDAM quoted in Section V-D."""

# --------------------------------------------------------------------------
# HDAC / TASR hyper-parameters (Section V-A)
# --------------------------------------------------------------------------

HDAC_ALPHA = 200.0
"""alpha in p = es/(es+eid) * exp(-(alpha*eid + beta*T))."""

HDAC_BETA = 0.5
"""beta in the HDAC probability function."""

HDAC_DISABLE_THRESHOLD = 0.01
"""HDAC is skipped (saving its extra cycle) when p < 1 % (Section IV-A)."""

TASR_NR = 2
"""Number of rotations per direction in TASR (Section V-A)."""

TASR_GAMMA = 2e-4
"""gamma in Tl = ceil(gamma / eid * m) (Section IV-B)."""

# --------------------------------------------------------------------------
# Error-injection conditions (Section V-A)
# --------------------------------------------------------------------------

CONDITION_A = {"substitution": 0.01, "insertion": 0.0005, "deletion": 0.0005}
"""Condition A: es = 1 %, ei = ed = 0.05 % (substitution dominant)."""

CONDITION_B = {"substitution": 0.001, "insertion": 0.005, "deletion": 0.005}
"""Condition B: es = 0.1 %, ei = ed = 0.5 % (indel dominant)."""

CONDITION_A_THRESHOLDS = tuple(range(1, 9))
"""Thresholds swept in Fig. 7 for Condition A."""

CONDITION_B_THRESHOLDS = tuple(range(2, 17, 2))
"""Thresholds swept in Fig. 7 for Condition B."""

# --------------------------------------------------------------------------
# Table I calibration (measured silicon values)
# --------------------------------------------------------------------------

ASMCAP_CELL_AREA_UM2 = 24.0
EDAM_CELL_AREA_UM2 = 33.4

ASMCAP_SEARCH_TIME_NS = 0.9
EDAM_SEARCH_TIME_NS = 2.4

ASMCAP_CELL_POWER_UW = 0.12
EDAM_CELL_POWER_UW = 1.0

# --------------------------------------------------------------------------
# Section V-B breakdown anchors (256x256 array)
# --------------------------------------------------------------------------

ARRAY_AREA_MM2 = 1.58
ARRAY_POWER_MW = 7.67

POWER_FRACTION_CELLS = 0.75
POWER_FRACTION_SHIFT_REGISTERS = 0.19
POWER_FRACTION_SENSE_AMPS = 0.06

# --------------------------------------------------------------------------
# Derived circuit-energy calibration
# --------------------------------------------------------------------------
# The charge-domain search energy follows Eq. (1) exactly (it is physics:
# capacitive charging).  The current-domain (EDAM) energy is modelled as
# matchline pre-charge plus per-mismatch discharge; the two constants
# below are calibrated so that, at the typical genome ED* mismatch
# fraction, the EDAM/ASMCap energy-per-search ratio matches the Table-I
# anchor (power ratio 8.5x at a 2.4/0.9 ns time ratio -> ~22x energy).

TYPICAL_ED_STAR_MISMATCH_FRACTION = 0.42
"""Expected ED* mismatch fraction for an unrelated DNA row: a stored
base matches any of the three searched bases with p = 1 - (3/4)^3 =
0.578, so ~42 % of cells mismatch."""

EDAM_ML_PRECHARGE_CAP_F = 1.85e-12
"""Modelled matchline pre-charge capacitance per EDAM row (~7 fF/cell)."""

EDAM_DISCHARGE_ENERGY_PER_MISMATCH_J = 24.7e-15
"""Modelled discharge energy per mismatched EDAM cell per search."""

EDAM_PRECHARGE_TIME_NS = 0.8
"""Matchline pre-charge phase EDAM needs before every search (skipped
by the charge-domain array, Section III-B)."""

SA_ENERGY_PER_ROW_J = 14.4e-15
"""Sense-amplifier energy per row decision (calibrated so SAs take ~6 %
of array power, Section V-B)."""

SHIFT_REGISTER_ENERGY_PER_SEARCH_J = 11.6e-12
"""Shift-register bank energy per search (load/rotate the read;
calibrated to the ~19 % power share of Section V-B)."""

# --------------------------------------------------------------------------
# Baseline cost-model constants (Section V-E, Fig. 8)
# --------------------------------------------------------------------------
# Physically grounded per-operation constants for the comparator systems.
# Each is a plausible number for the technology in question, chosen so the
# resulting system-level ratios land near the paper's Fig. 8 anchors (the
# FIG8_* dicts below); the *models* scale with workload size.

CM_CPU_CELL_UPDATES_PER_SECOND = 8.0e7
"""DP cell-update throughput of the i9-10980XE CM-CPU baseline
(scalar, branchy O(n*m) comparison-matrix code)."""

CM_CPU_POWER_W = 165.0
"""i9-10980XE package power under sustained load."""

RESMA_WAVEFRONT_NS = 5.4
"""ReSMA RRAM-crossbar cycle per CM anti-diagonal wavefront."""

RESMA_CELL_UPDATE_ENERGY_J = 10e-9
"""ReSMA energy per CM cell update.  Dominated by RRAM write-verify for
the intermediate values — the 'massive intermediate data and frequent
crossbar updates' the paper blames for ReSMA's energy (Section II-B)."""

RESMA_FILTER_ENERGY_J = 50e-9
"""ReSMA per-read RRAM-CAM filtering energy."""

RESMA_FILTER_NS = 30.0
"""ReSMA per-read filtering latency."""

SAVI_KMER_LENGTH = 16
"""Seed length used by the SaVI seed-and-vote baseline."""

SAVI_TCAM_SEARCH_NS = 60.0
"""SaVI TCAM search latency per k-mer (search + priority encode)."""

SAVI_TCAM_SEARCH_ENERGY_J = 4.6e-6
"""SaVI TCAM energy per k-mer search over the 64 Mb reference (TCAM
matchline power is the technology's known weakness)."""

SAVI_VOTE_NS = 10.0
"""SaVI voting latency per read."""

SAVI_VOTE_ENERGY_J = 20e-9
"""SaVI voting energy per read."""

SAVI_ACCURACY = 0.938
"""Average seed-and-vote accuracy the paper quotes for SaVI [11]."""

# --------------------------------------------------------------------------
# Fig. 8 anchors (paper-reported ratios, used for verification only)
# --------------------------------------------------------------------------

FIG8_SPEEDUP_NO_STRATEGY = {
    "cm_cpu": 9.7e4,
    "resma": 362.0,
    "savi": 126.0,
    "edam": 2.8,
}

FIG8_ENERGY_EFF_NO_STRATEGY = {
    "cm_cpu": 5.1e6,
    "resma": 2.3e4,
    "savi": 2.4e3,
    "edam": 28.0,
}

FIG8_SPEEDUP_WITH_STRATEGY = {
    "cm_cpu": 4.7e4,
    "resma": 174.0,
    "savi": 61.0,
    "edam": 1.4,
}

FIG8_ENERGY_EFF_WITH_STRATEGY = {
    "cm_cpu": 2.0e6,
    "resma": 8.7e3,
    "savi": 943.0,
    "edam": 10.8,
}
