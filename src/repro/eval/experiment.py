"""Accuracy experiments: dataset x system x threshold -> F1.

:class:`AccuracyExperiment` evaluates *systems* (anything that turns a
read into per-segment match decisions at a threshold) against exact
ground truth on a :class:`~repro.genome.datasets.Dataset`, producing
the confusion matrices behind Fig. 7.

The provided system factories cover the paper's four accuracy curves:

* ``edam_system``            — EDAM (current-domain hardware, plain ED*);
* ``asmcap_plain_system``    — ASMCap w/o HDAC and TASR;
* ``asmcap_full_system``     — ASMCap w/ HDAC and TASR;
* ``kraken_system``          — the exact-matching normalizer.

Each factory receives the dataset and a seed so Monte-Carlo repetitions
re-instantiate hardware noise independently.

**Sweep execution.**  Fig. 7 evaluates every system over a whole
threshold vector; a system that exposes ``decide_sweep(reads,
thresholds)`` (all the built-in adapters do) is evaluated in **one**
batched pass over the ``(B, N)`` read block — the hardware matchers
compute each search pass's mismatch counts and keyed noise once and
apply every threshold as a sense-amp reference comparison, so a T-point
curve costs ~1 search pass per read instead of T.  Noise determinism is
anchored on per-read query keys (the read's dataset index): the sweep
is bit-identical to a per-threshold scalar loop that passes
``query_key=read_index``, regardless of batching.  Systems without
``decide_sweep`` fall back to the legacy per-read ``decide`` loop.
"""

from __future__ import annotations

import inspect
from dataclasses import dataclass
from typing import Callable, Protocol

import numpy as np

from repro.baselines.edam import EdamMatcher
from repro.baselines.kraken import KrakenLikeClassifier
from repro.cam.array import CamArray
from repro.core.matcher import AsmCapMatcher, MatcherConfig
from repro.errors import ExperimentError
from repro.eval.confusion import ConfusionMatrix, confusion_series
from repro.eval.ground_truth import GroundTruth, label_dataset
from repro.genome.datasets import Dataset


class MatchSystem(Protocol):
    """Anything that maps (read codes, threshold) -> per-segment bools.

    Systems may additionally expose ``decide_sweep(reads, thresholds)
    -> (T, B, M) bool`` to let :class:`AccuracyExperiment` evaluate a
    whole threshold sweep in one batched pass; without it, evaluation
    falls back to per-read :meth:`decide` calls.
    """

    def decide(self, read: np.ndarray, threshold: int) -> np.ndarray: ...


#: A factory builds a system for one dataset + seed (fresh noise).
SystemFactory = Callable[[Dataset, int], MatchSystem]


@dataclass
class _MatcherSystem:
    """Adapter: AsmCapMatcher -> MatchSystem."""

    matcher: AsmCapMatcher

    def decide(self, read: np.ndarray, threshold: int,
               read_index: "int | None" = None) -> np.ndarray:
        return self.matcher.match(read, threshold,
                                  query_key=read_index).decisions

    def decide_sweep(self, reads: np.ndarray,
                     thresholds: np.ndarray) -> np.ndarray:
        return self.matcher.match_sweep(reads, thresholds).decisions


@dataclass
class _EdamSystem:
    """Adapter: EdamMatcher -> MatchSystem."""

    matcher: EdamMatcher

    def decide(self, read: np.ndarray, threshold: int,
               read_index: "int | None" = None) -> np.ndarray:
        return self.matcher.match(read, threshold,
                                  query_key=read_index).decisions

    def decide_sweep(self, reads: np.ndarray,
                     thresholds: np.ndarray) -> np.ndarray:
        return self.matcher.match_sweep(reads, thresholds)


@dataclass
class _KrakenSystem:
    """Adapter: KrakenLikeClassifier -> MatchSystem (threshold unused)."""

    classifier: KrakenLikeClassifier
    read_length: int

    def decide(self, read: np.ndarray, threshold: int,
               read_index: "int | None" = None) -> np.ndarray:
        from repro.genome.sequence import DnaSequence
        return self.classifier.classify(DnaSequence(read)).decisions

    def decide_sweep(self, reads: np.ndarray,
                     thresholds: np.ndarray) -> np.ndarray:
        # Exact matching ignores the threshold: classify the block
        # once, share the decisions across the whole sweep.
        once = self.classifier.classify_batch(reads).decisions
        return np.broadcast_to(once, (len(thresholds),) + once.shape)


def asmcap_full_system(dataset: Dataset, seed: int) -> MatchSystem:
    """ASMCap with HDAC and TASR on noisy charge-domain hardware."""
    return _asmcap_system(dataset, seed, MatcherConfig())


def asmcap_plain_system(dataset: Dataset, seed: int) -> MatchSystem:
    """ASMCap without the strategies (still charge-domain hardware)."""
    return _asmcap_system(dataset, seed, MatcherConfig.plain())


def _asmcap_system(dataset: Dataset, seed: int,
                   config: MatcherConfig) -> MatchSystem:
    array = CamArray(rows=dataset.n_segments, cols=dataset.read_length,
                     domain="charge", noisy=True, seed=seed)
    array.store(dataset.segments)
    matcher = AsmCapMatcher(array, dataset.model, config, seed=seed + 1)
    return _MatcherSystem(matcher)


def edam_system(dataset: Dataset, seed: int) -> MatchSystem:
    """EDAM: plain ED* on noisy current-domain hardware."""
    array = CamArray(rows=dataset.n_segments, cols=dataset.read_length,
                     domain="current", noisy=True, seed=seed)
    matcher = EdamMatcher(array=array)
    matcher.store(dataset.segments)
    return _EdamSystem(matcher)


def edam_sr_system(dataset: Dataset, seed: int) -> MatchSystem:
    """EDAM with its unconditional Sequence Rotation (Section IV-B).

    The variant TASR improves on: rotations always fire, trading FN
    correction for FP risk at small thresholds.
    """
    array = CamArray(rows=dataset.n_segments, cols=dataset.read_length,
                     domain="current", noisy=True, seed=seed)
    matcher = EdamMatcher(array=array, enable_sr=True)
    matcher.store(dataset.segments)
    return _EdamSystem(matcher)


def kraken_system(dataset: Dataset, seed: int,
                  k: int = 35, confidence: float = 0.9) -> MatchSystem:
    """Exact k-mer classifier (deterministic; seed unused)."""
    classifier = KrakenLikeClassifier(dataset.segments, k=k,
                                      confidence=confidence)
    return _KrakenSystem(classifier, dataset.read_length)


@dataclass
class AccuracyResult:
    """Per-threshold confusion matrices for one system."""

    name: str
    per_threshold: dict[int, ConfusionMatrix]

    def f1(self, threshold: int) -> float:
        return self.per_threshold[threshold].f1

    def f1_series(self) -> dict[int, float]:
        return {t: m.f1 for t, m in sorted(self.per_threshold.items())}

    def mean_f1(self) -> float:
        values = [m.f1 for m in self.per_threshold.values()]
        return float(np.mean(values)) if values else 0.0


class AccuracyExperiment:
    """Fig.-7-style accuracy evaluation on one dataset.

    Parameters
    ----------
    dataset:
        The evaluation dataset.
    thresholds:
        Threshold sweep (Condition A: 1..8, Condition B: 2..16).
    seed:
        Base seed handed to system factories.
    """

    def __init__(self, dataset: Dataset, thresholds: "list[int]",
                 seed: int = 0):
        if not thresholds:
            raise ExperimentError("thresholds must be non-empty")
        if any(t < 0 for t in thresholds):
            raise ExperimentError("thresholds must be non-negative")
        self._dataset = dataset
        self._thresholds = sorted({int(t) for t in thresholds})
        self._seed = seed
        self._truth: GroundTruth = label_dataset(dataset,
                                                 max(self._thresholds))

    @property
    def dataset(self) -> Dataset:
        return self._dataset

    @property
    def thresholds(self) -> list[int]:
        return list(self._thresholds)

    @property
    def seed(self) -> int:
        """Base seed handed to system factories."""
        return self._seed

    @property
    def ground_truth(self) -> GroundTruth:
        return self._truth

    def evaluate(self, name: str, factory: SystemFactory,
                 seed_offset: int = 0) -> AccuracyResult:
        """Run one system over all reads and thresholds.

        Systems exposing ``decide_sweep`` are evaluated in one batched
        sweep pass (see the module docstring); the confusion matrices
        of the whole threshold vector then accumulate in four
        vectorised reductions (:func:`repro.eval.confusion
        .confusion_series`).  Other systems run the legacy per-read
        loop, keyed by read index so both paths agree bit-for-bit
        whenever the system supports keys.
        """
        system = factory(self._dataset, self._seed + seed_offset)
        thresholds = np.asarray(self._thresholds, dtype=int)
        if not self._dataset.reads:
            # A zero-read dataset is a valid degenerate input for a
            # streaming caller: every matrix stays empty.
            return AccuracyResult(name=name, per_threshold={
                int(t): ConfusionMatrix() for t in thresholds
            })
        reads = np.stack(
            [record.read.codes for record in self._dataset.reads]
        )
        decide_sweep = getattr(system, "decide_sweep", None)
        if decide_sweep is not None:
            decisions = np.asarray(decide_sweep(reads, thresholds),
                                   dtype=bool)
            if decisions.shape[:2] != (thresholds.shape[0],
                                       reads.shape[0]):
                raise ExperimentError(
                    f"decide_sweep returned shape {decisions.shape} for "
                    f"{thresholds.shape[0]} thresholds x "
                    f"{reads.shape[0]} reads"
                )
        else:
            keyed = self._accepts_read_index(system)
            decisions = np.stack([
                np.stack([
                    np.asarray(
                        system.decide(read, int(threshold),
                                      read_index=read_index)
                        if keyed else system.decide(read, int(threshold)),
                        dtype=bool,
                    )
                    for read_index, read in enumerate(reads)
                ])
                for threshold in thresholds
            ])
        truth = np.stack(
            [self._truth.labels(int(t)) for t in thresholds]
        )
        matrices = confusion_series(decisions, truth)
        per_threshold = {
            int(t): matrix for t, matrix in zip(thresholds, matrices, strict=True)
        }
        return AccuracyResult(name=name, per_threshold=per_threshold)

    @staticmethod
    def _accepts_read_index(system: MatchSystem) -> bool:
        """Whether the fallback loop can key ``decide`` by read index.

        Systems whose ``decide`` accepts a ``read_index`` keyword (all
        the built-in adapters) get the read's dataset index, which is
        what keeps the fallback bit-identical to the sweep path;
        plain two-argument systems are called as-is.  Probed once per
        system — the answer is constant.
        """
        try:
            parameters = inspect.signature(system.decide).parameters
        except (TypeError, ValueError):
            return False
        return "read_index" in parameters

    def evaluate_all(self, systems: "dict[str, SystemFactory]"
                     ) -> dict[str, AccuracyResult]:
        """Evaluate several systems on identical ground truth."""
        return {
            name: self.evaluate(name, factory, seed_offset=i * 7919)
            for i, (name, factory) in enumerate(systems.items())
        }
