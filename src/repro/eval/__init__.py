"""Evaluation machinery: ground truth, confusion matrices, sweeps.

* :mod:`repro.eval.confusion` — TP/FP/FN/TN and F1 (Eq. 3-4);
* :mod:`repro.eval.ground_truth` — exact-ED labelling of datasets;
* :mod:`repro.eval.experiment` — system adapters and Fig.-7 runs;
* :mod:`repro.eval.sweeps` — Monte-Carlo repetition and aggregation;
* :mod:`repro.eval.reporting` — table/series formatting.
"""

from repro.eval.confusion import (
    ConfusionMatrix,
    confusion_from_decisions,
    confusion_series,
    f1_from_decisions,
)
from repro.eval.experiment import (
    AccuracyExperiment,
    AccuracyResult,
    asmcap_full_system,
    asmcap_plain_system,
    edam_sr_system,
    edam_system,
    kraken_system,
)
from repro.eval.ground_truth import GroundTruth, label_dataset
from repro.eval.noise_margin import (
    ExpectedConfusion,
    expected_confusion,
    flip_probability,
)
from repro.eval.reporting import format_ratio, format_series, format_table, to_csv
from repro.eval.roc import PrCurve, RocCurve, pr_curve, roc_curve
from repro.eval.sweeps import SweepResult, SweepSeries, run_sweep
from repro.eval.threshold_selection import (
    ThresholdChoice,
    ThresholdSelector,
    expected_edit_distance,
    rule_of_thumb_threshold,
)

__all__ = [
    "AccuracyExperiment",
    "AccuracyResult",
    "ConfusionMatrix",
    "ExpectedConfusion",
    "GroundTruth",
    "PrCurve",
    "RocCurve",
    "SweepResult",
    "SweepSeries",
    "ThresholdChoice",
    "ThresholdSelector",
    "asmcap_full_system",
    "asmcap_plain_system",
    "confusion_from_decisions",
    "confusion_series",
    "edam_sr_system",
    "edam_system",
    "expected_confusion",
    "expected_edit_distance",
    "f1_from_decisions",
    "flip_probability",
    "pr_curve",
    "roc_curve",
    "rule_of_thumb_threshold",
    "format_ratio",
    "format_series",
    "format_table",
    "kraken_system",
    "label_dataset",
    "run_sweep",
    "to_csv",
]
