"""Threshold selection: choosing ``T`` for a target workload.

The paper sweeps ``T`` and reports F1 per point; a deployment has to
*pick* one.  Two tools:

* :func:`expected_edit_distance` — the analytically expected edit count
  for an error model and read length, a principled starting point
  (``T ~ E[edits] + margin`` captures most true matches);
* :class:`ThresholdSelector` — empirical selection: evaluates a matcher
  factory over a labelled dataset across candidate thresholds and picks
  the F1-optimal one, reporting the full curve so the caller can trade
  sensitivity against precision.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.errors import ExperimentError
from repro.eval.confusion import ConfusionMatrix
from repro.eval.ground_truth import GroundTruth, label_dataset
from repro.genome.datasets import Dataset
from repro.genome.edits import ErrorModel


def expected_edit_distance(model: ErrorModel, read_length: int) -> float:
    """Expected number of injected edits for one read.

    Counts substitution events plus indel events; geometric bursts of
    mean length ``1/(1-burst_prob)`` multiply the indel base count.
    """
    if read_length <= 0:
        raise ExperimentError(
            f"read_length must be positive, got {read_length}"
        )
    burst_factor = 1.0 / max(1e-9, 1.0 - model.burst_prob)
    per_base = model.substitution + model.indel_rate * burst_factor
    return per_base * read_length


def rule_of_thumb_threshold(model: ErrorModel, read_length: int,
                            margin_sigmas: float = 2.0) -> int:
    """``T = E[edits] + margin_sigmas * sqrt(E[edits])``, rounded up.

    A Poisson-style margin: with ~2 sigmas, most true matches fall
    inside the threshold while it stays far below the random-pair
    distance.
    """
    expectation = expected_edit_distance(model, read_length)
    return int(np.ceil(expectation + margin_sigmas * np.sqrt(expectation)))


@dataclass(frozen=True)
class ThresholdChoice:
    """The selector's verdict."""

    best_threshold: int
    best_f1: float
    curve: dict[int, float]


class ThresholdSelector:
    """Empirical F1-optimal threshold selection on a labelled dataset.

    Parameters
    ----------
    dataset:
        The labelled workload.
    candidates:
        Thresholds to evaluate.
    """

    def __init__(self, dataset: Dataset, candidates: "list[int]"):
        if not candidates:
            raise ExperimentError("candidates must be non-empty")
        self._dataset = dataset
        self._candidates = sorted({int(t) for t in candidates})
        self._truth: GroundTruth = label_dataset(dataset,
                                                 max(self._candidates))

    @property
    def candidates(self) -> list[int]:
        return list(self._candidates)

    def select(self, decide: Callable[[np.ndarray, int], np.ndarray]
               ) -> ThresholdChoice:
        """Evaluate ``decide(read, T)`` across candidates and pick.

        Ties break toward the *smaller* threshold (cheaper TASR/HDAC
        regime and tighter matches).
        """
        curve: dict[int, float] = {}
        for threshold in self._candidates:
            matrix = ConfusionMatrix()
            labels = self._truth.labels(threshold)
            for index, record in enumerate(self._dataset.reads):
                predictions = decide(record.read.codes, threshold)
                matrix.update(predictions, labels[index])
            curve[threshold] = matrix.f1
        best_threshold = max(curve, key=lambda t: (curve[t], -t))
        return ThresholdChoice(best_threshold=best_threshold,
                               best_f1=curve[best_threshold], curve=curve)
