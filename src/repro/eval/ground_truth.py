"""Ground-truth labelling: exact edit distances for every decision pair.

The ASM goal (Section II-B) defines truth: a (read, segment) pair is a
true match at threshold ``T`` iff ``ED(segment, read) <= T``.  The
labeller computes the full ``(n_reads, n_segments)`` distance matrix
once with the batched banded DP — behind the exact base-composition
and q-gram (Ukkonen) lower-bound prefilters of
:mod:`repro.distance.edit_distance`, which prove most pairs "greater
than band" without running their DP — capped just above the largest
threshold any experiment will ask about, and answers every subsequent
threshold query with a comparison.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.distance.edit_distance import banded_edit_distance_batch
from repro.errors import ExperimentError
from repro.genome.datasets import Dataset


@dataclass(frozen=True)
class GroundTruth:
    """Capped exact-distance matrix with threshold queries.

    Attributes
    ----------
    distances:
        ``(n_reads, n_segments)`` int matrix; entries above ``band``
        hold ``band + 1`` ("greater than band").
    band:
        The cap; thresholds up to this value are answerable exactly.
    """

    distances: np.ndarray
    band: int

    def labels(self, threshold: int) -> np.ndarray:
        """Boolean truth matrix at *threshold*."""
        if not 0 <= threshold <= self.band:
            raise ExperimentError(
                f"threshold {threshold} outside labelled band 0..{self.band}"
            )
        return self.distances <= threshold

    def labels_for_read(self, read_index: int, threshold: int) -> np.ndarray:
        """Truth row for one read."""
        return self.labels(threshold)[read_index]

    @property
    def n_reads(self) -> int:
        return int(self.distances.shape[0])

    @property
    def n_segments(self) -> int:
        return int(self.distances.shape[1])

    def positives_per_threshold(self, thresholds: "list[int]") -> dict[int, int]:
        """True-match counts per threshold (dataset difficulty gauge)."""
        return {t: int(self.labels(t).sum()) for t in thresholds}


def label_dataset(dataset: Dataset, max_threshold: int,
                  margin: int = 2) -> GroundTruth:
    """Compute ground truth for every (read, segment) pair of a dataset.

    Parameters
    ----------
    dataset:
        The evaluation dataset.
    max_threshold:
        Largest threshold any experiment will query.
    margin:
        Extra band beyond ``max_threshold`` (keeps the cap comfortably
        above every queried threshold).
    """
    if max_threshold < 0:
        raise ExperimentError(
            f"max_threshold must be non-negative, got {max_threshold}"
        )
    band = max_threshold + margin
    if not dataset.reads:
        # A zero-read dataset labels to an empty truth matrix (valid
        # degenerate input for a streaming caller).
        return GroundTruth(
            distances=np.zeros((0, dataset.n_segments), dtype=np.int32),
            band=band,
        )
    reads = np.stack([record.read.codes for record in dataset.reads])
    distances = banded_edit_distance_batch(dataset.segments, reads, band)
    return GroundTruth(distances=distances, band=band)
