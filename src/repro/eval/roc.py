"""ROC and precision-recall analysis over mismatch-count scores.

The CAM's analog output is effectively a *score* (the mismatch count /
matchline voltage) that the sense amplifier binarises at ``V_ref``.
Sweeping the reference voltage instead of fixing it yields a full
ROC / precision-recall picture of the matcher, independent of any one
threshold — useful for comparing ED* against HD as *scoring functions*
and for quantifying how much the analog noise blurs the score.

Conventions: *lower* score means *more similar* (a mismatch count), and
a pair is predicted positive when ``score <= cutoff``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ExperimentError


@dataclass(frozen=True)
class RocCurve:
    """A computed ROC curve with its operating points.

    Attributes
    ----------
    cutoffs:
        Score cutoffs, ascending.
    tpr / fpr:
        True/false positive rates per cutoff.
    """

    cutoffs: np.ndarray
    tpr: np.ndarray
    fpr: np.ndarray

    @property
    def auc(self) -> float:
        """Area under the ROC curve (trapezoid over FPR)."""
        order = np.argsort(self.fpr, kind="stable")
        x = np.concatenate([[0.0], self.fpr[order], [1.0]])
        y = np.concatenate([[0.0], self.tpr[order], [1.0]])
        return float(np.trapezoid(y, x))

    def operating_point(self, cutoff: float) -> tuple[float, float]:
        """(FPR, TPR) at the closest computed cutoff."""
        index = int(np.argmin(np.abs(self.cutoffs - cutoff)))
        return float(self.fpr[index]), float(self.tpr[index])


@dataclass(frozen=True)
class PrCurve:
    """A precision-recall curve."""

    cutoffs: np.ndarray
    precision: np.ndarray
    recall: np.ndarray

    @property
    def average_precision(self) -> float:
        """Step-interpolated area under the PR curve."""
        order = np.argsort(self.recall, kind="stable")
        recall = self.recall[order]
        precision = self.precision[order]
        deltas = np.diff(np.concatenate([[0.0], recall]))
        return float((precision * deltas).sum())


def _validate(scores: np.ndarray, labels: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    scores = np.asarray(scores, dtype=float).ravel()
    labels = np.asarray(labels, dtype=bool).ravel()
    if scores.shape != labels.shape:
        raise ExperimentError(
            f"scores shape {scores.shape} != labels shape {labels.shape}"
        )
    if scores.size == 0:
        raise ExperimentError("cannot build a curve from no pairs")
    if not labels.any():
        raise ExperimentError("no positive pairs in the labels")
    if labels.all():
        raise ExperimentError("no negative pairs in the labels")
    return scores, labels


def roc_curve(scores: np.ndarray, labels: np.ndarray,
              cutoffs: "np.ndarray | None" = None) -> RocCurve:
    """ROC curve for low-is-similar scores."""
    scores, labels = _validate(scores, labels)
    if cutoffs is None:
        cutoffs = np.unique(scores)
    cutoffs = np.asarray(cutoffs, dtype=float)
    positives = labels.sum()
    negatives = labels.size - positives
    tpr = np.empty(cutoffs.size)
    fpr = np.empty(cutoffs.size)
    for index, cutoff in enumerate(cutoffs):
        predicted = scores <= cutoff
        tpr[index] = (predicted & labels).sum() / positives
        fpr[index] = (predicted & ~labels).sum() / negatives
    return RocCurve(cutoffs=cutoffs, tpr=tpr, fpr=fpr)


def pr_curve(scores: np.ndarray, labels: np.ndarray,
             cutoffs: "np.ndarray | None" = None) -> PrCurve:
    """Precision-recall curve for low-is-similar scores."""
    scores, labels = _validate(scores, labels)
    if cutoffs is None:
        cutoffs = np.unique(scores)
    cutoffs = np.asarray(cutoffs, dtype=float)
    positives = labels.sum()
    precision = np.empty(cutoffs.size)
    recall = np.empty(cutoffs.size)
    for index, cutoff in enumerate(cutoffs):
        predicted = scores <= cutoff
        n_predicted = predicted.sum()
        hits = (predicted & labels).sum()
        precision[index] = hits / n_predicted if n_predicted else 1.0
        recall[index] = hits / positives
    return PrCurve(cutoffs=cutoffs, precision=precision, recall=recall)
