"""Confusion-matrix accounting and the F1 score (Eq. 3-4).

A decision pair (read, stored segment) at threshold ``T`` is:

* **TP** — predicted 'match' and truly ``ED <= T``;
* **FP** — predicted 'match' but ``ED > T`` (EDAM's substitution-hiding
  misjudgment produces these);
* **FN** — predicted 'mismatch' but ``ED <= T`` (consecutive-indel
  misjudgment);
* **TN** — predicted 'mismatch' and ``ED > T``.

The paper scores Sensitivity = TP/(TP+FN), Precision = TP/(TP+FP) and
F1 = their harmonic mean.  Degenerate denominators (no true positives
anywhere) are defined as 0, matching scikit-learn's convention.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ExperimentError


@dataclass
class ConfusionMatrix:
    """Running TP/FP/FN/TN counts."""

    tp: int = 0
    fp: int = 0
    fn: int = 0
    tn: int = 0

    def update(self, predicted: np.ndarray, actual: np.ndarray) -> None:
        """Accumulate a batch of boolean decisions against truth."""
        predicted = np.asarray(predicted, dtype=bool)
        actual = np.asarray(actual, dtype=bool)
        if predicted.shape != actual.shape:
            raise ExperimentError(
                f"prediction shape {predicted.shape} != truth shape "
                f"{actual.shape}"
            )
        self.tp += int((predicted & actual).sum())
        self.fp += int((predicted & ~actual).sum())
        self.fn += int((~predicted & actual).sum())
        self.tn += int((~predicted & ~actual).sum())

    def __add__(self, other: "ConfusionMatrix") -> "ConfusionMatrix":
        if not isinstance(other, ConfusionMatrix):
            return NotImplemented
        return ConfusionMatrix(tp=self.tp + other.tp, fp=self.fp + other.fp,
                               fn=self.fn + other.fn, tn=self.tn + other.tn)

    @property
    def total(self) -> int:
        return self.tp + self.fp + self.fn + self.tn

    @property
    def sensitivity(self) -> float:
        """TP / (TP + FN); 0 when undefined."""
        denominator = self.tp + self.fn
        return self.tp / denominator if denominator else 0.0

    @property
    def precision(self) -> float:
        """TP / (TP + FP); 0 when undefined."""
        denominator = self.tp + self.fp
        return self.tp / denominator if denominator else 0.0

    @property
    def f1(self) -> float:
        """Harmonic mean of sensitivity and precision (Eq. 4)."""
        s, p = self.sensitivity, self.precision
        return 2.0 * s * p / (s + p) if (s + p) else 0.0

    @property
    def accuracy(self) -> float:
        """(TP + TN) / total; 0 on an empty matrix."""
        return (self.tp + self.tn) / self.total if self.total else 0.0

    def as_dict(self) -> dict[str, float]:
        """Summary dictionary for reporting."""
        return {
            "tp": self.tp, "fp": self.fp, "fn": self.fn, "tn": self.tn,
            "sensitivity": self.sensitivity, "precision": self.precision,
            "f1": self.f1, "accuracy": self.accuracy,
        }


def f1_from_decisions(predicted: np.ndarray, actual: np.ndarray) -> float:
    """One-shot F1 for a single decision batch."""
    matrix = ConfusionMatrix()
    matrix.update(predicted, actual)
    return matrix.f1


def confusion_from_decisions(predicted: np.ndarray,
                             actual: np.ndarray) -> ConfusionMatrix:
    """One-shot confusion matrix for a single decision batch."""
    matrix = ConfusionMatrix()
    matrix.update(predicted, actual)
    return matrix


def confusion_series(predicted: np.ndarray,
                     actual: np.ndarray) -> "list[ConfusionMatrix]":
    """Per-slice confusion matrices for a stacked decision block.

    The sweep engine produces a ``(T, B, M)`` decision tensor (one
    slice per threshold) and a matching truth tensor; this accumulates
    all four quadrant counts for every slice in four vectorised
    reductions instead of ``T * B`` :meth:`ConfusionMatrix.update`
    calls.  Equivalent to building each slice's matrix with
    :func:`confusion_from_decisions`.
    """
    predicted = np.asarray(predicted, dtype=bool)
    actual = np.asarray(actual, dtype=bool)
    if predicted.shape != actual.shape:
        raise ExperimentError(
            f"prediction shape {predicted.shape} != truth shape "
            f"{actual.shape}"
        )
    if predicted.ndim < 2:
        raise ExperimentError(
            f"confusion_series needs a stacked (T, ...) block, got "
            f"shape {predicted.shape}"
        )
    axes = tuple(range(1, predicted.ndim))
    tp = (predicted & actual).sum(axis=axes)
    fp = (predicted & ~actual).sum(axis=axes)
    fn = (~predicted & actual).sum(axis=axes)
    tn = (~predicted & ~actual).sum(axis=axes)
    return [
        ConfusionMatrix(tp=int(tp[i]), fp=int(fp[i]), fn=int(fn[i]),
                        tn=int(tn[i]))
        for i in range(predicted.shape[0])
    ]
