"""Report formatting: ASCII tables and CSV series for the experiments.

Every experiment driver prints through these helpers so the regenerated
tables/figures look uniform and can be diffed run-to-run.  Figures are
emitted as aligned numeric series (one row per x-value, one column per
curve) — the same data a plotting script would consume.
"""

from __future__ import annotations

import io
from typing import Iterable, Mapping, Sequence

from repro.errors import ExperimentError


def format_table(headers: Sequence[str],
                 rows: Iterable[Sequence[object]],
                 title: "str | None" = None,
                 float_format: str = "{:.4g}") -> str:
    """Render an aligned ASCII table."""
    rendered_rows: list[list[str]] = []
    for row in rows:
        rendered: list[str] = []
        for value in row:
            if isinstance(value, float):
                rendered.append(float_format.format(value))
            else:
                rendered.append(str(value))
        rendered_rows.append(rendered)
    n_columns = len(headers)
    for row in rendered_rows:
        if len(row) != n_columns:
            raise ExperimentError(
                f"row width {len(row)} != header width {n_columns}"
            )
    widths = [len(h) for h in headers]
    for row in rendered_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    out = io.StringIO()
    if title:
        out.write(title + "\n")
    separator = "-+-".join("-" * w for w in widths)
    out.write(" | ".join(h.ljust(w) for h, w in zip(headers, widths, strict=True)) + "\n")
    out.write(separator + "\n")
    for row in rendered_rows:
        out.write(" | ".join(c.ljust(w) for c, w in zip(row, widths, strict=True)) + "\n")
    return out.getvalue()


def format_series(x_label: str, x_values: Sequence[object],
                  curves: Mapping[str, Sequence[float]],
                  title: "str | None" = None) -> str:
    """Render figure-style series: one row per x, one column per curve."""
    for name, values in curves.items():
        if len(values) != len(x_values):
            raise ExperimentError(
                f"curve {name!r} has {len(values)} points, expected "
                f"{len(x_values)}"
            )
    headers = [x_label] + list(curves.keys())
    rows = [
        [x] + [curves[name][i] for name in curves]
        for i, x in enumerate(x_values)
    ]
    return format_table(headers, rows, title=title)


def to_csv(headers: Sequence[str],
           rows: Iterable[Sequence[object]]) -> str:
    """Minimal CSV rendering (no quoting needs arise in our data)."""
    out = io.StringIO()
    out.write(",".join(str(h) for h in headers) + "\n")
    for row in rows:
        cells = []
        for value in row:
            text = repr(value) if isinstance(value, float) else str(value)
            if "," in text:
                raise ExperimentError(f"CSV cell contains a comma: {text!r}")
            cells.append(text)
        out.write(",".join(cells) + "\n")
    return out.getvalue()


def format_ratio(value: float) -> str:
    """Human-friendly ratio rendering ('2.8x', '9.7e4x')."""
    if value >= 1e4:
        return f"{value:.1e}x"
    if value >= 100:
        return f"{value:.0f}x"
    return f"{value:.1f}x"
