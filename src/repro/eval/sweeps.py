"""Monte-Carlo sweeps: repeat accuracy experiments over seeds and
aggregate the F1 series.

Fig. 7's curves are Monte-Carlo results (hardware noise and HDAC's
random draws both vary run to run); this module repeats an experiment
over independently seeded datasets/systems and reports mean and
standard deviation per threshold, plus the paper's headline aggregates
(mean-F1 ratios between systems, maximum ratio and where it occurs).

**Execution model.**  Each repetition is self-contained — its dataset,
arrays and noise streams all derive from the run's seed — so runs
dispatch across ``concurrent.futures`` worker threads (numpy releases
the GIL inside the heavy kernels) and gather in run order.  Results are
therefore bit-identical for any worker count, including 1.  Within a
run, every system's threshold curve is produced by the batched sweep
engine (:meth:`repro.eval.experiment.AccuracyExperiment.evaluate`): one
search pass per Fig. 7 curve instead of one per threshold.
"""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field

import numpy as np

from repro.arch.autotune import sweep_worker_count
from repro.errors import ExperimentError
from repro.eval.experiment import (
    AccuracyExperiment,
    AccuracyResult,
    SystemFactory,
)
from repro.genome.datasets import build_dataset


@dataclass
class SweepSeries:
    """Aggregated F1 across repetitions for one system."""

    name: str
    thresholds: list[int]
    f1_runs: np.ndarray  # (n_runs, n_thresholds)

    @property
    def mean(self) -> np.ndarray:
        return self.f1_runs.mean(axis=0)

    @property
    def std(self) -> np.ndarray:
        return self.f1_runs.std(axis=0)

    def mean_f1(self) -> float:
        """Grand mean over thresholds and runs."""
        return float(self.f1_runs.mean())

    def series(self) -> dict[int, float]:
        return dict(zip(self.thresholds, self.mean.tolist(), strict=True))


@dataclass
class SweepResult:
    """All systems' aggregated series for one condition."""

    condition: str
    thresholds: list[int]
    systems: dict[str, SweepSeries] = field(default_factory=dict)

    def ratio(self, numerator: str, denominator: str) -> np.ndarray:
        """Per-threshold mean-F1 ratio between two systems."""
        num = self.systems[numerator].mean
        den = self.systems[denominator].mean
        with np.errstate(divide="ignore", invalid="ignore"):
            out = np.where(den > 0, num / den, np.inf)
        return out

    def mean_ratio(self, numerator: str, denominator: str) -> float:
        """Average of the per-threshold ratios (the paper's '1.2x')."""
        ratios = self.ratio(numerator, denominator)
        finite = ratios[np.isfinite(ratios)]
        return float(finite.mean()) if finite.size else float("inf")

    def max_ratio(self, numerator: str, denominator: str) -> tuple[float, int]:
        """Largest per-threshold ratio and the threshold where it occurs."""
        ratios = self.ratio(numerator, denominator)
        finite_mask = np.isfinite(ratios)
        if not finite_mask.any():
            return float("inf"), self.thresholds[0]
        index = int(np.argmax(np.where(finite_mask, ratios, -np.inf)))
        return float(ratios[index]), self.thresholds[index]


def run_sweep(condition: str,
              systems: "dict[str, SystemFactory]",
              thresholds: "list[int]",
              n_runs: int = 3,
              n_reads: int = 96,
              read_length: int = 256,
              n_segments: int = 128,
              seed: int = 0,
              burst_prob: float = 0.3,
              n_workers: "int | None" = None) -> SweepResult:
    """Repeat an accuracy experiment across seeds and aggregate.

    Each run draws a fresh dataset (new reference, reads, edits) and
    fresh hardware noise, so the spread is the full Monte-Carlo spread.
    Runs are dispatched across ``n_workers`` threads (default: one per
    run up to the CPU count, see
    :func:`repro.arch.autotune.sweep_worker_count`) and merged in run
    order — the aggregate is bit-identical for every worker count.
    """
    if n_runs < 1:
        raise ExperimentError(f"n_runs must be positive, got {n_runs}")
    if not systems:
        raise ExperimentError(
            "systems must be non-empty; a sweep with no systems would "
            "produce a degenerate SweepResult"
        )
    if n_workers is None:
        n_workers = sweep_worker_count(n_runs)
    elif n_workers < 1:
        raise ExperimentError(
            f"n_workers must be positive, got {n_workers}"
        )
    result = SweepResult(condition=condition,
                         thresholds=sorted({int(t) for t in thresholds}))

    def one_run(run: int) -> "dict[str, AccuracyResult]":
        """One self-contained Monte-Carlo repetition (seed-keyed)."""
        dataset = build_dataset(condition, n_reads=n_reads,
                                read_length=read_length,
                                n_segments=n_segments,
                                seed=seed + run * 104729,
                                burst_prob=burst_prob)
        experiment = AccuracyExperiment(dataset, result.thresholds,
                                        seed=seed + run * 7)
        return experiment.evaluate_all(systems)

    if n_workers == 1 or n_runs == 1:
        per_run = [one_run(run) for run in range(n_runs)]
    else:
        with ThreadPoolExecutor(
                max_workers=min(n_workers, n_runs)) as pool:
            per_run = list(pool.map(one_run, range(n_runs)))

    accumulator: dict[str, list[list[float]]] = {name: [] for name in systems}
    for outcomes in per_run:
        for name, outcome in outcomes.items():
            accumulator[name].append(
                [outcome.per_threshold[t].f1 for t in result.thresholds]
            )
    for name, runs in accumulator.items():
        result.systems[name] = SweepSeries(
            name=name, thresholds=result.thresholds,
            f1_runs=np.array(runs, dtype=float),
        )
    return result
