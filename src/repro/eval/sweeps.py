"""Monte-Carlo sweeps: repeat accuracy experiments over seeds and
aggregate the F1 series.

Fig. 7's curves are Monte-Carlo results (hardware noise and HDAC's
random draws both vary run to run); this module repeats an experiment
over independently seeded datasets/systems and reports mean and
standard deviation per threshold, plus the paper's headline aggregates
(mean-F1 ratios between systems, maximum ratio and where it occurs).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import ExperimentError
from repro.eval.experiment import AccuracyExperiment, SystemFactory
from repro.genome.datasets import build_dataset


@dataclass
class SweepSeries:
    """Aggregated F1 across repetitions for one system."""

    name: str
    thresholds: list[int]
    f1_runs: np.ndarray  # (n_runs, n_thresholds)

    @property
    def mean(self) -> np.ndarray:
        return self.f1_runs.mean(axis=0)

    @property
    def std(self) -> np.ndarray:
        return self.f1_runs.std(axis=0)

    def mean_f1(self) -> float:
        """Grand mean over thresholds and runs."""
        return float(self.f1_runs.mean())

    def series(self) -> dict[int, float]:
        return dict(zip(self.thresholds, self.mean.tolist()))


@dataclass
class SweepResult:
    """All systems' aggregated series for one condition."""

    condition: str
    thresholds: list[int]
    systems: dict[str, SweepSeries] = field(default_factory=dict)

    def ratio(self, numerator: str, denominator: str) -> np.ndarray:
        """Per-threshold mean-F1 ratio between two systems."""
        num = self.systems[numerator].mean
        den = self.systems[denominator].mean
        with np.errstate(divide="ignore", invalid="ignore"):
            out = np.where(den > 0, num / den, np.inf)
        return out

    def mean_ratio(self, numerator: str, denominator: str) -> float:
        """Average of the per-threshold ratios (the paper's '1.2x')."""
        ratios = self.ratio(numerator, denominator)
        finite = ratios[np.isfinite(ratios)]
        return float(finite.mean()) if finite.size else float("inf")

    def max_ratio(self, numerator: str, denominator: str) -> tuple[float, int]:
        """Largest per-threshold ratio and the threshold where it occurs."""
        ratios = self.ratio(numerator, denominator)
        finite_mask = np.isfinite(ratios)
        if not finite_mask.any():
            return float("inf"), self.thresholds[0]
        index = int(np.argmax(np.where(finite_mask, ratios, -np.inf)))
        return float(ratios[index]), self.thresholds[index]


def run_sweep(condition: str,
              systems: "dict[str, SystemFactory]",
              thresholds: "list[int]",
              n_runs: int = 3,
              n_reads: int = 96,
              read_length: int = 256,
              n_segments: int = 128,
              seed: int = 0,
              burst_prob: float = 0.3) -> SweepResult:
    """Repeat an accuracy experiment across seeds and aggregate.

    Each run draws a fresh dataset (new reference, reads, edits) and
    fresh hardware noise, so the spread is the full Monte-Carlo spread.
    """
    if n_runs <= 0:
        raise ExperimentError(f"n_runs must be positive, got {n_runs}")
    result = SweepResult(condition=condition,
                         thresholds=sorted(set(int(t) for t in thresholds)))
    accumulator: dict[str, list[list[float]]] = {name: [] for name in systems}
    for run in range(n_runs):
        dataset = build_dataset(condition, n_reads=n_reads,
                                read_length=read_length,
                                n_segments=n_segments,
                                seed=seed + run * 104729,
                                burst_prob=burst_prob)
        experiment = AccuracyExperiment(dataset, result.thresholds,
                                        seed=seed + run * 7)
        outcomes = experiment.evaluate_all(systems)
        for name, outcome in outcomes.items():
            accumulator[name].append(
                [outcome.per_threshold[t].f1 for t in result.thresholds]
            )
    for name, runs in accumulator.items():
        result.systems[name] = SweepSeries(
            name=name, thresholds=result.thresholds,
            f1_runs=np.array(runs, dtype=float),
        )
    return result
