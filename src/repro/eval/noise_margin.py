"""Analytic misjudgment model: closed-form flip probabilities.

The Monte-Carlo experiments *sample* sensing noise; this module
*computes* it.  For a row whose digital mismatch count is ``n`` and a
sense amplifier deciding ``n <= T`` at reference level ``T + 1/2``
(midpoint rule), the probability that Gaussian matchline noise flips
the decision is a Q-function of the margin:

    P(flip) = Q( |n - (T + 1/2)| * spacing / sigma(n) )

with ``spacing = VDD/N`` and ``sigma(n)`` from the domain's variation
model.  From these per-row flip probabilities the expected confusion
matrix — and therefore the expected F1 — follows directly, giving an
instant, noise-model-exact prediction the tests compare against the
sampled arrays.

This also quantifies the paper's Section V-D argument: at the paper's
variations, ASMCap's flip probability at any threshold <= 16 is
astronomically small while EDAM's boundary rows flip tens of percent
of the time.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro import constants
from repro.cam.variation import ChargeDomainVariation, CurrentDomainVariation
from repro.errors import ThresholdError

# scipy is optional: only the Gaussian survival function is used, and
# math.erfc reproduces it to double precision when scipy is absent.
try:
    from scipy.stats import norm as _norm
except ImportError:  # pragma: no cover - exercised on scipy-free CI
    _norm = None

_erfc = np.vectorize(math.erfc, otypes=[float])


def _gaussian_sf(z: np.ndarray) -> np.ndarray:
    if _norm is not None:
        return _norm.sf(z)
    return _erfc(np.asarray(z, dtype=float) / math.sqrt(2.0)) * 0.5


def _variation_for(domain: str):
    if domain == "charge":
        return ChargeDomainVariation()
    if domain == "current":
        return CurrentDomainVariation()
    raise ThresholdError(f"domain must be 'charge' or 'current', got {domain!r}")


def flip_probability(mismatch_count: "int | np.ndarray", threshold: int,
                     n_cells: int, domain: str = "charge",
                     strict_paper_rule: bool = False) -> np.ndarray:
    """Probability that sensing noise flips a row's decision.

    Parameters
    ----------
    mismatch_count:
        The row's digital mismatch count(s).
    threshold:
        Decision threshold ``T``.
    n_cells:
        Row width ``N``.
    domain:
        ``"charge"`` (ASMCap) or ``"current"`` (EDAM).
    strict_paper_rule:
        Place ``V_ref`` at ``T`` exactly instead of ``T + 1/2`` — rows
        with ``n == T`` then sit on the boundary and flip ~50 %.
    """
    counts = np.asarray(mismatch_count, dtype=float)
    if not 0 <= threshold <= n_cells:
        raise ThresholdError(
            f"threshold {threshold} out of range 0..{n_cells}"
        )
    variation = _variation_for(domain)
    sigma = np.asarray(variation.sigma_vml(counts.astype(int), n_cells),
                       dtype=float)
    spacing = constants.VDD_VOLTS / n_cells
    reference_level = threshold if strict_paper_rule else threshold + 0.5
    margin_volts = np.abs(counts - reference_level) * spacing
    with np.errstate(divide="ignore"):
        z = np.where(sigma > 0, margin_volts / np.where(sigma > 0, sigma, 1),
                     np.inf)
    return _gaussian_sf(z)


@dataclass(frozen=True)
class ExpectedConfusion:
    """Expected confusion counts under analytic noise."""

    tp: float
    fp: float
    fn: float
    tn: float

    @property
    def sensitivity(self) -> float:
        denominator = self.tp + self.fn
        return self.tp / denominator if denominator else 0.0

    @property
    def precision(self) -> float:
        denominator = self.tp + self.fp
        return self.tp / denominator if denominator else 0.0

    @property
    def f1(self) -> float:
        s, p = self.sensitivity, self.precision
        return 2 * s * p / (s + p) if (s + p) else 0.0


def expected_confusion(mismatch_counts: np.ndarray, truth: np.ndarray,
                       threshold: int, n_cells: int,
                       domain: str = "charge",
                       strict_paper_rule: bool = False) -> ExpectedConfusion:
    """Expected confusion matrix over (pair) decisions.

    Parameters
    ----------
    mismatch_counts:
        Digital mismatch counts per decision pair (any shape).
    truth:
        Boolean ground-truth labels, same shape.
    threshold, n_cells, domain, strict_paper_rule:
        As in :func:`flip_probability`.
    """
    counts = np.asarray(mismatch_counts)
    truth = np.asarray(truth, dtype=bool)
    if counts.shape != truth.shape:
        raise ThresholdError(
            f"counts shape {counts.shape} != truth shape {truth.shape}"
        )
    digital_match = counts <= threshold
    flips = flip_probability(counts, threshold, n_cells, domain,
                             strict_paper_rule)
    p_match = np.where(digital_match, 1.0 - flips, flips)
    tp = float(p_match[truth].sum())
    fn = float((1.0 - p_match[truth]).sum())
    fp = float(p_match[~truth].sum())
    tn = float((1.0 - p_match[~truth]).sum())
    return ExpectedConfusion(tp=tp, fp=fp, fn=fn, tn=tn)
