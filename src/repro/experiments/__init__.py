"""Experiment drivers — one per paper table/figure.

* :mod:`repro.experiments.table1` — Table I circuit comparison;
* :mod:`repro.experiments.fig7` — Fig. 7 F1 vs threshold;
* :mod:`repro.experiments.fig8` — Fig. 8 speedup/energy bars;
* :mod:`repro.experiments.breakdown` — Section V-B area/power;
* :mod:`repro.experiments.states` — Section V-D states analysis;
* :mod:`repro.experiments.runner` — the CLI.
"""

from repro.experiments import ablations, breakdown, fig7, fig8, states, table1

__all__ = ["ablations", "breakdown", "fig7", "fig8", "states", "table1"]
