"""Programmatic ablation drivers (shared by benches and the CLI).

Three ablations DESIGN.md calls out, runnable via
``python -m repro.experiments ablations``:

* ``hdac`` — F1 over an (alpha, beta) grid around the paper's (200, 0.5);
* ``tasr`` — F1 per TASR variant (NR, direction, gamma = 0 == plain SR);
* ``defects`` — mapping recovery vs stuck-row density (robustness).
"""

from __future__ import annotations

import numpy as np

from repro.cam.array import CamArray
from repro.cam.defects import DefectiveArray, DefectMap
from repro.core.matcher import AsmCapMatcher, MatcherConfig
from repro.eval.confusion import ConfusionMatrix
from repro.eval.ground_truth import GroundTruth, label_dataset
from repro.eval.reporting import format_table
from repro.genome.datasets import Dataset, build_dataset


def _mean_f1(dataset: Dataset, truth: GroundTruth, config: MatcherConfig,
             thresholds: "tuple[int, ...]", seed: int = 0) -> float:
    array = CamArray(rows=dataset.n_segments, cols=dataset.read_length,
                     domain="charge", noisy=True, seed=seed)
    array.store(dataset.segments)
    matcher = AsmCapMatcher(array, dataset.model, config, seed=seed + 1)
    scores = []
    for threshold in thresholds:
        matrix = ConfusionMatrix()
        labels = truth.labels(threshold)
        for index, record in enumerate(dataset.reads):
            matrix.update(matcher.match(record.read.codes,
                                        threshold).decisions,
                          labels[index])
        scores.append(matrix.f1)
    return float(np.mean(scores))


def hdac_ablation(n_reads: int = 48, n_segments: int = 64,
                  seed: int = 0) -> str:
    """Sweep HDAC's (alpha, beta) on Condition A, small thresholds."""
    thresholds = (1, 2, 3)
    dataset = build_dataset("A", n_reads=n_reads, read_length=256,
                            n_segments=n_segments, seed=seed)
    truth = label_dataset(dataset, max(thresholds))
    rows = []
    for alpha in (50.0, 200.0, 800.0):
        for beta in (0.25, 0.5, 1.0):
            config = MatcherConfig(enable_tasr=False, hdac_alpha=alpha,
                                   hdac_beta=beta)
            rows.append((alpha, beta,
                         _mean_f1(dataset, truth, config, thresholds)))
    rows.append(("(no HDAC)", "-",
                 _mean_f1(dataset, truth, MatcherConfig.plain(),
                          thresholds)))
    return format_table(["alpha", "beta", "mean F1 (T=1..3)"], rows,
                        title="HDAC ablation (Condition A)")


def tasr_ablation(n_reads: int = 48, n_segments: int = 64,
                  seed: int = 0) -> str:
    """Compare TASR variants on Condition B."""
    thresholds = (2, 4, 6, 8, 10, 12, 14, 16)
    dataset = build_dataset("B", n_reads=n_reads, read_length=256,
                            n_segments=n_segments, seed=seed)
    truth = label_dataset(dataset, max(thresholds))
    variants = {
        "no TASR": MatcherConfig(enable_hdac=False, enable_tasr=False),
        "TASR NR=1": MatcherConfig(enable_hdac=False, tasr_nr=1),
        "TASR NR=2 (paper)": MatcherConfig(enable_hdac=False),
        "TASR left-only": MatcherConfig(enable_hdac=False,
                                        tasr_direction="left"),
        "SR (gamma=0)": MatcherConfig(enable_hdac=False, tasr_gamma=0.0),
    }
    rows = [
        (name, _mean_f1(dataset, truth, config, thresholds, seed=i))
        for i, (name, config) in enumerate(variants.items())
    ]
    return format_table(["variant", "mean F1 (T=2..16)"], rows,
                        title="TASR ablation (Condition B)")


def defect_ablation(n_segments: int = 64, seed: int = 0) -> str:
    """Mapping recovery vs stuck-mismatch row density."""
    rng = np.random.default_rng(seed)
    segments = rng.integers(0, 4, (n_segments, 256)).astype(np.uint8)
    rows = []
    for rate in (0.0, 0.02, 0.05, 0.1, 0.2):
        array = CamArray(rows=n_segments, cols=256, noisy=False)
        array.store(segments)
        defects = DefectMap.sample(n_segments, 0.0, rate,
                                   np.random.default_rng(seed + 1))
        wrapped = DefectiveArray(array, defects)
        hits = sum(
            int(wrapped.search(segments[r], 0).matches[r])
            for r in range(n_segments)
        )
        rows.append((f"{rate * 100:.0f} %", defects.n_defective,
                     hits / n_segments * 100))
    return format_table(
        ["stuck-row rate", "defective rows", "self-recovery %"], rows,
        title="Defect robustness (exact self-match per row)",
    )


def main(which: str = "all", seed: int = 0) -> str:
    """Run the requested ablation(s)."""
    parts = []
    if which in ("hdac", "all"):
        parts.append(hdac_ablation(seed=seed))
    if which in ("tasr", "all"):
        parts.append(tasr_ablation(seed=seed))
    if which in ("defects", "all"):
        parts.append(defect_ablation(seed=seed))
    return "\n".join(parts)
