"""Section V-D — distinguishable-state analysis (44 vs 566).

Regenerates: EDAM's current variation (2.5 %) supports at most 44
distinguishable V_ML states under the 3-sigma constraint, while
ASMCap's capacitor variation (1.4 %) combined with Eq. (2) supports
566 even in the worst case — covering the full 256-base read length
with margin where EDAM cannot.
"""

from __future__ import annotations

from dataclasses import dataclass


from repro import constants
from repro.cam.variation import ChargeDomainVariation, CurrentDomainVariation
from repro.eval.reporting import format_table


@dataclass(frozen=True)
class StatesResult:
    """Distinguishable-state counts and supporting sigmas."""

    asmcap_states: int
    edam_states: int
    asmcap_worst_sigma_mv: float
    edam_worst_sigma_mv: float
    read_length: int

    @property
    def asmcap_supports_read(self) -> bool:
        """A row needs N+1 distinguishable levels for N cells."""
        return self.asmcap_states >= self.read_length + 1

    @property
    def edam_supports_read(self) -> bool:
        return self.edam_states >= self.read_length + 1

    def render(self) -> str:
        rows = [
            ("Relative variation",
             f"{constants.EDAM_CURRENT_SIGMA * 100:.1f} % (current)",
             f"{constants.ASMCAP_CAPACITOR_SIGMA * 100:.1f} % (capacitor)"),
            ("Distinguishable states", str(self.edam_states),
             str(self.asmcap_states)),
            ("Paper quotes", str(constants.EDAM_DISTINGUISHABLE_STATES),
             str(constants.ASMCAP_DISTINGUISHABLE_STATES)),
            ("Worst-case sigma", f"{self.edam_worst_sigma_mv:.2f} mV",
             f"{self.asmcap_worst_sigma_mv:.2f} mV"),
            (f"Supports {self.read_length}-base reads",
             "yes" if self.edam_supports_read else "no",
             "yes" if self.asmcap_supports_read else "no"),
        ]
        return format_table(
            ["Metric", "EDAM", "ASMCap"], rows,
            title="Section V-D: distinguishable V_ML states (3-sigma rule)",
        )


def compute_states(read_length: int = constants.READ_LENGTH) -> StatesResult:
    """Regenerate the states analysis from the variation models."""
    charge = ChargeDomainVariation()
    current = CurrentDomainVariation()
    return StatesResult(
        asmcap_states=charge.distinguishable_states(),
        edam_states=current.distinguishable_states(),
        asmcap_worst_sigma_mv=charge.worst_case_sigma(read_length) * 1e3,
        edam_worst_sigma_mv=current.worst_case_sigma(read_length) * 1e3,
        read_length=read_length,
    )


def main() -> str:
    """Run and render the states analysis."""
    return compute_states().render()


if __name__ == "__main__":
    print(main())
