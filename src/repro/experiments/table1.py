"""Table I — circuit-level comparison between ASMCap and EDAM.

Rows reproduced: ML-CAM mode, technology, cell area (with ratio),
supply voltage, search time (with ratio), average power per cell (with
ratio).  Areas come from the transistor-budget area model, search times
from the timing model's cycle composition, and cell powers from the
cost-ledger component views at typical genome activity
(:func:`repro.arch.power.component_energies_per_search`, which reads
:func:`repro.cost.views.component_energies`) over the steady-state
issue period — the ratios are model outputs, anchored as described in
DESIGN.md.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro import constants
from repro.arch.power import (
    cell_area_um2,
    component_energies_per_search,
    steady_state_search_period_ns,
)
from repro.arch.timing import TimingModel
from repro.baselines.edam import (
    edam_issue_period_ns,
    edam_search_energy_per_array,
)
from repro.cam.cell import AsmCapCell
from repro.eval.reporting import format_table

#: EDAM's modelled transistor budget: ASMCap's cell plus the discharge
#: path (pull-down stack per searchline pair) and without ASMCap's
#: layout optimisations — sized to the Table-I 1.4x area ratio.
EDAM_CELL_TRANSISTORS = 39


@dataclass(frozen=True)
class Table1Row:
    """One comparison row."""

    metric: str
    edam: str
    asmcap: str


@dataclass(frozen=True)
class Table1Result:
    """All Table I quantities, raw and formatted."""

    asmcap_cell_area_um2: float
    edam_cell_area_um2: float
    asmcap_search_time_ns: float
    edam_search_time_ns: float
    asmcap_cell_power_uw: float
    edam_cell_power_uw: float

    @property
    def area_ratio(self) -> float:
        return self.edam_cell_area_um2 / self.asmcap_cell_area_um2

    @property
    def search_time_ratio(self) -> float:
        return self.edam_search_time_ns / self.asmcap_search_time_ns

    @property
    def power_ratio(self) -> float:
        return self.edam_cell_power_uw / self.asmcap_cell_power_uw

    def rows(self) -> list[Table1Row]:
        return [
            Table1Row("ML-CAM Mode", "Current domain", "Charge domain"),
            Table1Row("Technology", f"{constants.TECHNOLOGY_NM}nm",
                      f"{constants.TECHNOLOGY_NM}nm"),
            Table1Row(
                "Cell Area",
                f"{self.edam_cell_area_um2:.1f} um2 ({self.area_ratio:.1f}x)",
                f"{self.asmcap_cell_area_um2:.1f} um2 (1x)",
            ),
            Table1Row("Supply voltage", f"{constants.VDD_VOLTS}V",
                      f"{constants.VDD_VOLTS}V"),
            Table1Row(
                "Search time",
                f"{self.edam_search_time_ns:.1f}ns "
                f"({self.search_time_ratio:.1f}x)",
                f"{self.asmcap_search_time_ns:.1f}ns (1x)",
            ),
            Table1Row(
                "Average power per cell",
                f"{self.edam_cell_power_uw:.2f}uW ({self.power_ratio:.1f}x)",
                f"{self.asmcap_cell_power_uw:.2f}uW (1x)",
            ),
        ]

    def render(self) -> str:
        return format_table(
            ["Metric", "EDAM [18]", "ASMCap"],
            [(r.metric, r.edam, r.asmcap) for r in self.rows()],
            title="Table I: circuit-level comparison (regenerated)",
        )


def compute_table1(rows: int = constants.ARRAY_ROWS,
                   cols: int = constants.ARRAY_COLS) -> Table1Result:
    """Regenerate every Table I quantity from the models."""
    cells = rows * cols

    asmcap_area = cell_area_um2(AsmCapCell.TRANSISTOR_COUNT)
    edam_area = cell_area_um2(EDAM_CELL_TRANSISTORS)

    asmcap_time = sum(TimingModel("charge").search_phases_ns().values())
    edam_time = sum(TimingModel("current").search_phases_ns().values())
    # Table I's EDAM search time excludes the pre-charge phase (it can
    # overlap the previous result's readout); the timing model keeps the
    # phase split so the system model can charge it where it serialises.
    edam_time_table = edam_time - 0.0  # all three phases are in-cycle

    asmcap_energy = sum(
        component_energies_per_search(rows, cols).values()
    )
    asmcap_power_uw = (asmcap_energy
                       / (steady_state_search_period_ns(rows, cols) * 1e-9)
                       / cells * 1e6)
    edam_energy = edam_search_energy_per_array(rows=rows, cols=cols)
    edam_power_uw = (edam_energy / (edam_issue_period_ns(rows, cols) * 1e-9)
                     / cells * 1e6)

    return Table1Result(
        asmcap_cell_area_um2=asmcap_area,
        edam_cell_area_um2=edam_area,
        asmcap_search_time_ns=asmcap_time,
        edam_search_time_ns=edam_time_table,
        asmcap_cell_power_uw=asmcap_power_uw,
        edam_cell_power_uw=edam_power_uw,
    )


def main() -> str:
    """Run and render Table I."""
    result = compute_table1()
    return result.render()


if __name__ == "__main__":
    print(main())
