"""Fig. 8 — system-level speedup and energy efficiency vs prior ASM
accelerators (CM-CPU, ReSMA, SaVI, EDAM, ASMCap w/o and w/ strategies).

Per-read latency and energy models (512 arrays x 256 x 256, 64 Mb):

* **ASMCap** — the first search of a read costs one steady-state issue
  period (fetch + broadcast + load + search; derived from the Section
  V-B power anchor).  HDAC's Hamming search and TASR's rotated searches
  reuse the already-loaded read, so each extra search adds one search
  cycle (plus shift cycles for rotations).  The strategy statistics are
  **measured** on the functional engine: one
  :meth:`~repro.core.matcher.AsmCapMatcher.match_sweep` pass per
  condition, with the per-threshold HDAC/TASR search counts and
  rotation cycles harvested from the array's cost ledger
  (:func:`repro.cost.profile.measure_strategy_profile`), averaged over
  each condition's threshold sweep and then over the two conditions —
  the same "average effect of the proposed strategies" the paper
  reports.  The old policy-derived profile
  (:func:`strategy_search_profile`) is kept as an analytic cross-check
  the driver prints next to the measurement.
* **EDAM** — same structure in the current domain (pre-charge +
  discharge + sample), period derived from its Table-I cell power.
* **CM-CPU / ReSMA / SaVI** — the baseline cost models of
  :mod:`repro.baselines` (see DESIGN.md for their calibration).

The driver prints measured ratios next to the paper's reported anchors
so deviations are visible at a glance.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro import constants
from repro.arch.power import (
    component_energies_per_search,
    steady_state_search_period_ns,
)
from repro.arch.timing import SHIFT_CYCLE_NS
from repro.baselines.cm_cpu import CmCpuBaseline
from repro.baselines.edam import (
    edam_issue_period_ns,
    edam_search_energy_per_array,
)
from repro.baselines.resma import ResmaBaseline
from repro.baselines.savi import SaviBaseline
from repro.core import policy
from repro.cost.profile import StrategyProfile, measure_strategy_profile
from repro.errors import ExperimentError
from repro.eval.reporting import format_ratio, format_table
from repro.genome.edits import ErrorModel
from repro.genome.generator import generate_reference

#: System ordering used in the rendered figure.
SYSTEMS = ("CM-CPU", "ReSMA", "SaVI", "EDAM",
           "ASMCap w/o H&T", "ASMCap w/ H&T")


@dataclass(frozen=True)
class SystemCost:
    """Per-read latency and energy of one system."""

    name: str
    latency_ns: float
    energy_joules: float


@dataclass
class Fig8Result:
    """All systems' per-read costs plus derived ratios.

    ``profiles`` holds the per-condition strategy statistics the
    ASMCap-with-strategies cost consumed (measured from the functional
    engine by default); ``analytic_profiles`` holds the policy-derived
    cross-check for the same conditions.
    """

    costs: dict[str, SystemCost]
    profiles: dict[str, StrategyProfile] = field(default_factory=dict)
    analytic_profiles: dict[str, StrategyProfile] = field(
        default_factory=dict
    )

    def speedup_over(self, baseline: str, system: str) -> float:
        return (self.costs[baseline].latency_ns
                / self.costs[system].latency_ns)

    def energy_efficiency_over(self, baseline: str, system: str) -> float:
        return (self.costs[baseline].energy_joules
                / self.costs[system].energy_joules)

    def speedup_series(self, system: str) -> dict[str, float]:
        """Speedup of *system* over each other system."""
        return {name: self.speedup_over(name, system)
                for name in SYSTEMS if name != system}

    def render_profiles(self) -> str:
        """The measured strategy statistics vs the analytic cross-check."""
        if not self.profiles:
            return ""
        rows = []
        for condition, profile in sorted(self.profiles.items()):
            analytic = self.analytic_profiles.get(condition)
            rows.append((
                condition,
                f"{profile.searches_per_read:.3f}",
                ("-" if analytic is None
                 else f"{analytic.searches_per_read:.3f}"),
                f"{profile.rotation_cycles_per_read:.2f}",
                ("-" if analytic is None
                 else f"{analytic.rotation_cycles_per_read:.2f}"),
                profile.source,
            ))
        return format_table(
            ["Condition", "searches/read", "analytic", "rot. cycles/read",
             "analytic", "source"],
            rows,
            title="Strategy statistics (one match_sweep pass per "
                  "condition, ledger-harvested)",
        )

    def render(self) -> str:
        rows = [
            (name,
             self.costs[name].latency_ns,
             self.costs[name].energy_joules * 1e9,
             format_ratio(self.speedup_over(name, "ASMCap w/ H&T"))
             if name != "ASMCap w/ H&T" else "1x",
             format_ratio(self.energy_efficiency_over(name, "ASMCap w/ H&T"))
             if name != "ASMCap w/ H&T" else "1x")
            for name in SYSTEMS
        ]
        table = format_table(
            ["System", "Latency/read (ns)", "Energy/read (nJ)",
             "ASMCap w/ speedup", "ASMCap w/ energy-eff"],
            rows, title="Fig. 8: system-level comparison (regenerated)",
        )
        anchor_rows = []
        key_map = {"CM-CPU": "cm_cpu", "ReSMA": "resma",
                   "SaVI": "savi", "EDAM": "edam"}
        for name, key in key_map.items():
            anchor_rows.append((
                name,
                format_ratio(self.speedup_over(name, "ASMCap w/o H&T")),
                format_ratio(constants.FIG8_SPEEDUP_NO_STRATEGY[key]),
                format_ratio(self.speedup_over(name, "ASMCap w/ H&T")),
                format_ratio(constants.FIG8_SPEEDUP_WITH_STRATEGY[key]),
                format_ratio(
                    self.energy_efficiency_over(name, "ASMCap w/o H&T")),
                format_ratio(constants.FIG8_ENERGY_EFF_NO_STRATEGY[key]),
                format_ratio(
                    self.energy_efficiency_over(name, "ASMCap w/ H&T")),
                format_ratio(constants.FIG8_ENERGY_EFF_WITH_STRATEGY[key]),
            ))
        anchors = format_table(
            ["vs", "speedup w/o", "paper", "speedup w/", "paper",
             "energy w/o", "paper", "energy w/", "paper"],
            anchor_rows, title="Measured ratios vs paper anchors",
        )
        parts = [table, anchors]
        profiles = self.render_profiles()
        if profiles:
            parts.append(profiles)
        return "\n".join(parts)


def strategy_search_profile(condition: str,
                            tasr_direction: str = "both"
                            ) -> tuple[float, float]:
    """(avg searches per read, avg rotation cycles per read) with the
    strategies enabled, averaged over the condition's threshold sweep.

    Derived purely from the policies — HDAC issues its extra search
    when ``p >= 1 %``, TASR issues one search per rotation offset when
    ``T >= Tl``.  Kept as the analytic *cross-check* of the measured
    :func:`repro.cost.profile.measure_strategy_profile`; the two agree
    whenever the functional matcher applies the paper's policies.
    """
    label = condition.strip().upper()
    if label == "A":
        model = ErrorModel.condition_a()
        thresholds = constants.CONDITION_A_THRESHOLDS
    elif label == "B":
        model = ErrorModel.condition_b()
        thresholds = constants.CONDITION_B_THRESHOLDS
    else:
        raise ExperimentError(f"unknown condition {condition!r}")
    from repro.core.tasr import rotation_offsets
    offsets = rotation_offsets(constants.TASR_NR, tasr_direction)
    lower_bound = policy.tasr_lower_bound(model.indel_rate,
                                          constants.READ_LENGTH)
    searches = []
    cycles = []
    for t in thresholds:
        n = 1.0
        p = policy.hdac_probability(model.substitution, model.indel_rate, t)
        if policy.hdac_enabled(p):
            n += 1.0
        c = 0.0
        if policy.tasr_enabled(t, lower_bound):
            n += len(offsets)
            c = float(sum(abs(o) for o in offsets))
        searches.append(n)
        cycles.append(c)
    return float(np.mean(searches)), float(np.mean(cycles))


def analytic_strategy_profile(condition: str,
                              tasr_direction: str = "both"
                              ) -> StrategyProfile:
    """:func:`strategy_search_profile` as a :class:`StrategyProfile`."""
    searches, cycles = strategy_search_profile(condition, tasr_direction)
    return StrategyProfile(
        condition=condition.strip().upper(),
        searches_per_read=searches,
        rotation_cycles_per_read=cycles,
        source="analytic",
    )


def asmcap_read_cost(profile: "StrategyProfile | None" = None,
                     *,
                     n_arrays: int = constants.ARRAY_COUNT) -> SystemCost:
    """ASMCap per-read cost with the pipelined extra-search model.

    Pass a :class:`~repro.cost.profile.StrategyProfile` (measured or
    analytic); ``None`` means the strategy-free baseline,
    :meth:`~repro.cost.profile.StrategyProfile.plain` (one ED* search,
    no rotations).
    """
    if profile is None:
        profile = StrategyProfile.plain()
    elif not isinstance(profile, StrategyProfile):
        raise ExperimentError(
            f"asmcap_read_cost takes a StrategyProfile, got "
            f"{type(profile).__name__} (build one with "
            f"analytic_strategy_profile, measure_strategy_profile or "
            f"StrategyProfile.plain())"
        )
    searches_per_read = profile.searches_per_read
    rotation_cycles_per_read = profile.rotation_cycles_per_read
    period = steady_state_search_period_ns()
    search_cycle = constants.ASMCAP_SEARCH_TIME_NS
    latency = (period + (searches_per_read - 1.0) * search_cycle
               + rotation_cycles_per_read * SHIFT_CYCLE_NS)
    per_array = sum(component_energies_per_search().values())
    energy = per_array * n_arrays * searches_per_read
    name = "ASMCap w/ H&T" if searches_per_read > 1.0 else "ASMCap w/o H&T"
    return SystemCost(name=name, latency_ns=latency, energy_joules=energy)


def edam_read_cost(n_arrays: int = constants.ARRAY_COUNT) -> SystemCost:
    """EDAM per-read cost (one search per read, its own issue period)."""
    return SystemCost(
        name="EDAM",
        latency_ns=edam_issue_period_ns(),
        energy_joules=edam_search_energy_per_array() * n_arrays,
    )


def compute_fig8(read_length: int = constants.READ_LENGTH,
                 tasr_direction: str = "both",
                 measured: bool = True,
                 seed: int = 0) -> Fig8Result:
    """Regenerate the Fig. 8 comparison.

    With ``measured=True`` (the default) the ASMCap strategy
    statistics come from one functional ``match_sweep`` pass per
    condition, harvested from the cost ledger; ``measured=False``
    falls back to the policy-derived analytic profile.  Both paths
    also compute the analytic profile so the result can render the
    cross-check.
    """
    cm = CmCpuBaseline()
    resma = ResmaBaseline()
    savi = SaviBaseline(generate_reference(4096, seed=0))

    analytic = {label: analytic_strategy_profile(label, tasr_direction)
                for label in ("A", "B")}
    if measured:
        profiles = {
            label: measure_strategy_profile(
                label, tasr_direction=tasr_direction, seed=seed,
            )
            for label in ("A", "B")
        }
    else:
        profiles = analytic
    combined = StrategyProfile.average(
        [profiles["A"], profiles["B"]]
    )

    # "w/o H&T" is a one-search, zero-rotation read: the strategy-free
    # baseline profile.
    plain = asmcap_read_cost(StrategyProfile.plain())
    full = asmcap_read_cost(combined)
    costs = {
        "CM-CPU": SystemCost("CM-CPU", cm.read_latency_ns(read_length),
                             cm.read_energy_joules(read_length)),
        "ReSMA": SystemCost("ReSMA", resma.read_latency_ns(read_length),
                            resma.read_energy_joules(read_length)),
        "SaVI": SystemCost("SaVI", savi.read_latency_ns(read_length),
                           savi.read_energy_joules(read_length)),
        "EDAM": edam_read_cost(),
        "ASMCap w/o H&T": plain,
        "ASMCap w/ H&T": full,
    }
    return Fig8Result(costs=costs, profiles=profiles,
                      analytic_profiles=analytic)


def main() -> str:
    """Run and render Fig. 8 (measured strategy statistics)."""
    return compute_fig8().render()


if __name__ == "__main__":
    print(main())
