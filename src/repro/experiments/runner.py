"""Command-line entry point: ``python -m repro.experiments <name>``.

Experiments: ``table1``, ``fig7``, ``fig8``, ``breakdown``, ``states``,
``summary`` (the Fig. 1(b)-style accuracy/efficiency recap), ``all``.
"""

from __future__ import annotations

import argparse
import sys

from repro.experiments import ablations, breakdown, fig7, fig8, states, table1

EXPERIMENTS = ("table1", "fig7", "fig8", "breakdown", "states",
               "summary", "ablations", "all")


def run_summary(n_runs: int, n_reads: int, n_segments: int,
                seed: int) -> str:
    """Fig. 1(b)-style recap: accuracy vs energy efficiency."""
    from repro.eval.reporting import format_ratio, format_table
    fig8_result = fig8.compute_fig8()
    a = fig7.run_fig7("A", n_runs=n_runs, n_reads=n_reads,
                      n_segments=n_segments, seed=seed)
    b = fig7.run_fig7("B", n_runs=n_runs, n_reads=n_reads,
                      n_segments=n_segments, seed=seed)
    mean_f1 = {
        name: (a.sweep.systems[name].mean_f1()
               + b.sweep.systems[name].mean_f1()) / 2 * 100
        for name in (fig7.SYSTEM_EDAM, fig7.SYSTEM_PLAIN, fig7.SYSTEM_FULL)
    }
    rows = []
    for display, cost_key in ((fig7.SYSTEM_EDAM, "EDAM"),
                              (fig7.SYSTEM_PLAIN, "ASMCap w/o H&T"),
                              (fig7.SYSTEM_FULL, "ASMCap w/ H&T")):
        rows.append((
            display, f"{mean_f1[display]:.1f} %",
            format_ratio(
                fig8_result.energy_efficiency_over("CM-CPU", cost_key)
            ),
        ))
    return format_table(
        ["System", "Mean F1 (A+B)", "Energy efficiency vs CM-CPU"],
        rows, title="Fig. 1(b)-style summary: accuracy vs efficiency",
    )


def main(argv: "list[str] | None" = None) -> int:
    parser = argparse.ArgumentParser(
        prog="asmcap-experiments",
        description="Regenerate the ASMCap paper's tables and figures.",
    )
    parser.add_argument("experiment", choices=EXPERIMENTS,
                        help="which artifact to regenerate")
    parser.add_argument("--condition", default="both",
                        choices=("A", "B", "both"),
                        help="fig7: which error condition")
    parser.add_argument("--runs", type=int, default=3,
                        help="Monte-Carlo repetitions (fig7/summary)")
    parser.add_argument("--reads", type=int, default=96,
                        help="reads per repetition (fig7/summary)")
    parser.add_argument("--segments", type=int, default=128,
                        help="stored segments (fig7/summary)")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--workers", type=int, default=None,
                        help="Monte-Carlo worker threads (fig7/summary; "
                             "default: autotuned from runs and cores)")
    args = parser.parse_args(argv)

    outputs: list[str] = []
    if args.experiment in ("table1", "all"):
        outputs.append(table1.main())
    if args.experiment in ("fig7", "all"):
        outputs.append(fig7.main(condition=args.condition,
                                 n_runs=args.runs, n_reads=args.reads,
                                 n_segments=args.segments, seed=args.seed,
                                 n_workers=args.workers))
    if args.experiment in ("fig8", "all"):
        outputs.append(fig8.main())
    if args.experiment in ("breakdown", "all"):
        outputs.append(breakdown.main())
    if args.experiment in ("states", "all"):
        outputs.append(states.main())
    if args.experiment in ("summary", "all"):
        outputs.append(run_summary(args.runs, args.reads, args.segments,
                                   args.seed))
    if args.experiment == "ablations":
        outputs.append(ablations.main(seed=args.seed))
    print("\n".join(outputs))
    return 0


if __name__ == "__main__":
    sys.exit(main())
