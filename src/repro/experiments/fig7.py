"""Fig. 7 — accuracy (F1) vs threshold for Conditions A and B.

Four panels regenerated as numeric series:

* Condition A (es = 1 %, ei = ed = 0.05 %), T in 1..8:
  F1(%) and F1 normalised by the Kraken-like exact matcher;
* Condition B (es = 0.1 %, ei = ed = 0.5 %), T in 2..16 (even):
  same two panels.

Curves: EDAM, ASMCap w/o HDAC & TASR, ASMCap w/ HDAC & TASR
(normalised panels add nothing new — they divide by the same
normaliser — but are emitted because the paper plots them).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro import constants
from repro.errors import ExperimentError
from repro.eval.experiment import (
    asmcap_full_system,
    asmcap_plain_system,
    edam_system,
    kraken_system,
)
from repro.eval.reporting import format_series
from repro.eval.sweeps import SweepResult, run_sweep

#: Display names used across the Fig. 7/8 experiments.
SYSTEM_EDAM = "EDAM"
SYSTEM_PLAIN = "ASMCap w/o H&T"
SYSTEM_FULL = "ASMCap w/ H&T"
SYSTEM_KRAKEN = "Kraken-like"


@dataclass
class Fig7Result:
    """One condition's regenerated panels."""

    condition: str
    sweep: SweepResult
    kraken_f1: float

    @property
    def thresholds(self) -> list[int]:
        return self.sweep.thresholds

    def f1_percent(self, system: str) -> np.ndarray:
        return self.sweep.systems[system].mean * 100.0

    def normalized(self, system: str) -> np.ndarray:
        if self.kraken_f1 <= 0.0:
            raise ExperimentError("Kraken normalizer scored zero F1")
        return self.sweep.systems[system].mean / self.kraken_f1

    def render(self) -> str:
        curves_f1 = {
            SYSTEM_EDAM: self.f1_percent(SYSTEM_EDAM).tolist(),
            SYSTEM_PLAIN: self.f1_percent(SYSTEM_PLAIN).tolist(),
            SYSTEM_FULL: self.f1_percent(SYSTEM_FULL).tolist(),
        }
        curves_norm = {
            SYSTEM_EDAM: self.normalized(SYSTEM_EDAM).tolist(),
            SYSTEM_PLAIN: self.normalized(SYSTEM_PLAIN).tolist(),
            SYSTEM_FULL: self.normalized(SYSTEM_FULL).tolist(),
        }
        top = format_series(
            "Threshold", self.thresholds, curves_f1,
            title=f"Fig. 7 (Condition {self.condition}): F1 (%)",
        )
        bottom = format_series(
            "Threshold", self.thresholds, curves_norm,
            title=(f"Fig. 7 (Condition {self.condition}): F1 normalized "
                   f"by Kraken-like (F1 = {self.kraken_f1 * 100:.1f}%)"),
        )
        ratios = (
            f"mean F1 ratio {SYSTEM_FULL}/{SYSTEM_EDAM}: "
            f"{self.sweep.mean_ratio(SYSTEM_FULL, SYSTEM_EDAM):.2f}x; "
            f"max: {self.sweep.max_ratio(SYSTEM_FULL, SYSTEM_EDAM)[0]:.2f}x "
            f"at T={self.sweep.max_ratio(SYSTEM_FULL, SYSTEM_EDAM)[1]}\n"
        )
        return top + "\n" + bottom + "\n" + ratios


def thresholds_for(condition: str) -> list[int]:
    """The paper's threshold sweep for each condition."""
    label = condition.strip().upper()
    if label == "A":
        return list(constants.CONDITION_A_THRESHOLDS)
    if label == "B":
        return list(constants.CONDITION_B_THRESHOLDS)
    raise ExperimentError(f"unknown condition {condition!r}")


def run_fig7(condition: str = "A", n_runs: int = 3, n_reads: int = 96,
             n_segments: int = 128, read_length: int = 256,
             seed: int = 0, n_workers: "int | None" = None) -> Fig7Result:
    """Regenerate one condition of Fig. 7.

    Every curve comes from the batched sweep engine (one search pass
    per read per curve, not per threshold), with Monte-Carlo runs
    fanned out across ``n_workers`` threads; results are identical for
    any worker count.
    """
    thresholds = thresholds_for(condition)
    systems = {
        SYSTEM_EDAM: edam_system,
        SYSTEM_PLAIN: asmcap_plain_system,
        SYSTEM_FULL: asmcap_full_system,
        SYSTEM_KRAKEN: kraken_system,
    }
    sweep = run_sweep(condition, systems, thresholds, n_runs=n_runs,
                      n_reads=n_reads, n_segments=n_segments,
                      read_length=read_length, seed=seed,
                      n_workers=n_workers)
    kraken_f1 = sweep.systems[SYSTEM_KRAKEN].mean_f1()
    return Fig7Result(condition=condition.strip().upper(), sweep=sweep,
                      kraken_f1=kraken_f1)


def main(condition: str = "both", n_runs: int = 3, n_reads: int = 96,
         n_segments: int = 128, seed: int = 0,
         n_workers: "int | None" = None) -> str:
    """Run and render Fig. 7 (one or both conditions)."""
    conditions = ["A", "B"] if condition == "both" else [condition]
    chunks = [
        run_fig7(c, n_runs=n_runs, n_reads=n_reads,
                 n_segments=n_segments, seed=seed,
                 n_workers=n_workers).render()
        for c in conditions
    ]
    return "\n".join(chunks)


if __name__ == "__main__":
    print(main())
