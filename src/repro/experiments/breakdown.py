"""Section V-B — area and power breakdown of a 256 x 256 ASMCap array.

Paper numbers: 1.58 mm^2 and 7.67 mW per array; > 99 % of area in the
cells; power split ~75 % cells / 19 % shift registers / 6 % SAs.
The area and the power *split* come from the models; the total power
anchors the steady-state search period (see :mod:`repro.arch.power`).

The component fractions are read from the cost-ledger views
(:func:`repro.cost.views.component_energies` over the synthetic
typical-activity pass, via :mod:`repro.arch.power`) — the same
accounting every measured search pass of the functional engine flows
through.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro import constants
from repro.arch.power import (
    PowerBreakdown,
    array_area_mm2,
    array_power_breakdown,
    cell_area_fraction,
    steady_state_search_period_ns,
)
from repro.eval.reporting import format_table


@dataclass(frozen=True)
class BreakdownResult:
    """Regenerated Section V-B quantities."""

    area_mm2: float
    cell_area_fraction: float
    power: PowerBreakdown
    search_period_ns: float

    def render(self) -> str:
        area_rows = [
            ("Array area", f"{self.area_mm2:.2f} mm2",
             f"{constants.ARRAY_AREA_MM2:.2f} mm2"),
            ("Cell area share", f"{self.cell_area_fraction * 100:.1f} %",
             "> 99 %"),
        ]
        fractions = self.power.fractions
        power_rows = [
            ("Total power", f"{self.power.total_w * 1e3:.2f} mW",
             f"{constants.ARRAY_POWER_MW:.2f} mW"),
            ("Cells", f"{fractions['cells'] * 100:.1f} %",
             f"{constants.POWER_FRACTION_CELLS * 100:.0f} %"),
            ("Shift registers",
             f"{fractions['shift_registers'] * 100:.1f} %",
             f"{constants.POWER_FRACTION_SHIFT_REGISTERS * 100:.0f} %"),
            ("Sense amplifiers", f"{fractions['sense_amps'] * 100:.1f} %",
             f"{constants.POWER_FRACTION_SENSE_AMPS * 100:.0f} %"),
            ("Implied search period", f"{self.search_period_ns:.2f} ns",
             "(model-derived)"),
        ]
        return (format_table(["Area metric", "Measured", "Paper"], area_rows,
                             title="Section V-B: area breakdown (256x256)")
                + "\n"
                + format_table(["Power metric", "Measured", "Paper"],
                               power_rows,
                               title="Section V-B: power breakdown"))


def compute_breakdown(rows: int = constants.ARRAY_ROWS,
                      cols: int = constants.ARRAY_COLS) -> BreakdownResult:
    """Regenerate the Section V-B breakdown."""
    return BreakdownResult(
        area_mm2=array_area_mm2(rows, cols),
        cell_area_fraction=cell_area_fraction(rows, cols),
        power=array_power_breakdown(rows, cols),
        search_period_ns=steady_state_search_period_ns(rows, cols),
    )


def main() -> str:
    """Run and render the breakdown."""
    return compute_breakdown().render()


if __name__ == "__main__":
    print(main())
