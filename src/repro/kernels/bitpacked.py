"""The 2-bit-packed XOR+popcount backend (``bitpacked``).

ASMCap matches over a 4-letter alphabet, so a base is 2 bits and a row
of ``N`` bases is two uint64 bitplanes of ``ceil(N / 64)`` words.  Two
codes differ exactly when either bitplane differs:

    miss = (s0 ^ q0) | (s1 ^ q1)         # one bit per cell

and a mismatch count is ``popcount(miss & valid)``.  ED* ANDs in the
two neighbour comparisons before the popcount: a cell is an ED*
mismatch only when the stored base differs from the read base *and*
both of its neighbours.  The neighbour query planes come from shifting
the packed centre planes by one bit (with word-boundary carry), and
the edge cells — which have no neighbour — are forced to mismatch by
the ``valid_no_first`` / ``valid_no_last`` masks, bit-exact with
:func:`repro.distance.ed_star.match_planes`.

Versus the float GEMM this touches 1/16th the memory per comparison
and does no float math at all, which is why it wins on paper-sized
blocks (``benchmarks/bench_kernels.py`` measures the gap).  Counts are
pure-integer, so cross-backend bit-identity is structural.
"""

from __future__ import annotations

import numpy as np

from repro.kernels.base import (
    PACKED_CHUNK_WORDS,
    EncodedReference,
    KernelBackend,
    pack_bitplanes,
    valid_masks,
)
from repro.kernels.registry import register_backend

if hasattr(np, "bitwise_count"):
    def popcount_sum(words: np.ndarray) -> np.ndarray:
        """Sum of per-word popcounts along the last axis.

        The word axis is short (one word per 64 cells), so folding it
        with explicit adds beats ``.sum(axis=-1)``'s short-axis
        reduction by a wide margin on these buffers.
        """
        counts = np.bitwise_count(words)
        total = counts[..., 0].copy()
        for word in range(1, counts.shape[-1]):
            total += counts[..., word]
        return total.astype(np.intp)
else:  # numpy < 2.0: byte-LUT fallback, same exact integers.
    _POPCOUNT8 = np.array([bin(value).count("1") for value in range(256)],
                          dtype=np.uint8)

    def popcount_sum(words: np.ndarray) -> np.ndarray:
        """Sum of per-word popcounts along the last axis."""
        as_bytes = np.ascontiguousarray(words).view(np.uint8)
        as_bytes = as_bytes.reshape(words.shape[:-1] + (-1,))
        return _POPCOUNT8[as_bytes].sum(axis=-1, dtype=np.intp)


_ONE = np.uint64(1)
_CARRY = np.uint64(63)


def _packed_chunks(n_queries: int, n_rows: int,
                   words_per_pair: int) -> "list[tuple[int, int]]":
    """Query chunks bounding each ``(B, M, words_per_pair)`` buffer."""
    per_query = max(1, n_rows * words_per_pair)
    chunk = max(1, PACKED_CHUNK_WORDS // per_query)
    return [(start, min(start + chunk, n_queries))
            for start in range(0, n_queries, chunk)]


def _shifted_neighbours(centre: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """The ED* neighbour query planes, derived by word shifts.

    ``prev`` holds ``R[j-1]`` at bit ``j`` (so XOR against a stored row
    evaluates ``S[j] == R[j-1]``), ``next`` holds ``R[j+1]``.  The edge
    cells and the packing tail carry garbage bits; the
    ``valid_no_first`` / ``valid_no_last`` masks neutralise both.
    """
    prev = centre << _ONE
    prev[..., 1:] |= centre[..., :-1] >> _CARRY
    following = centre >> _ONE
    following[..., :-1] |= centre[..., 1:] << _CARRY
    return prev, following


class BitpackedBackend(KernelBackend):
    """XOR+popcount mismatch counts over 2-bit-packed bitplanes.

    The hot loop is arranged to minimise numpy dispatches on these
    small word buffers: both bitplanes of all query variants (centre
    and, for ED*, the two shift-derived neighbours) are laid side by
    side along the word axis so one broadcast XOR against the (tiled)
    stored planes compares everything, and mismatch bits are counted
    directly — no equality inversion, no ``n_cells - count`` pass.
    """

    name = "bitpacked"

    # Overridable so the optional numba lane can swap the reduction.
    @staticmethod
    def _popcount_sum(words: np.ndarray) -> np.ndarray:
        return popcount_sum(words)

    def _counts(self, encoded: EncodedReference, queries: np.ndarray,
                *, ed_star: bool) -> np.ndarray:
        if ed_star:
            return self._ed_star_counts(encoded, queries, with_hd=False)[0]
        return self._hamming_counts(encoded, queries)

    def _counts_dual(self, encoded: EncodedReference,
                     queries: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        # The centre difference IS the HD plane and ED*'s first factor:
        # one shared pass serves both counts.
        return self._ed_star_counts(encoded, queries, with_hd=True)

    def _hamming_counts(self, encoded: EncodedReference,
                        queries: np.ndarray) -> np.ndarray:
        n_queries = queries.shape[0]
        counts = np.empty((n_queries, encoded.n_rows), dtype=np.intp)
        stored = np.ascontiguousarray(encoded.planes.transpose(1, 0, 2))
        packed = pack_bitplanes(queries).transpose(1, 0, 2)  # (2, B, W)
        for start, stop in _packed_chunks(n_queries, encoded.n_rows,
                                          2 * encoded.n_words):
            diff = (stored[:, None, :, :]
                    ^ packed[:, start:stop, None, :])     # (2, b, M, W)
            mismatch = diff[0] | diff[1]
            mismatch &= encoded.valid
            counts[start:stop] = self._popcount_sum(mismatch)
        return counts

    def _ed_star_counts(
            self, encoded: EncodedReference, queries: np.ndarray,
            *, with_hd: bool) -> "tuple[np.ndarray, np.ndarray | None]":
        n_queries = queries.shape[0]
        ed = np.empty((n_queries, encoded.n_rows), dtype=np.intp)
        hd = np.empty_like(ed) if with_hd else None
        centre = pack_bitplanes(queries)
        prev, following = _shifted_neighbours(centre)
        # Plane-major (plane, variant, query, word) layout: one XOR and
        # one OR compare both planes of all three query variants
        # against the stored rows, and every downstream mask works on a
        # contiguous (variant, query, row, word) view.
        variants = np.stack([centre, prev, following], axis=2)
        variants = np.ascontiguousarray(variants.transpose(1, 2, 0, 3))
        stored = np.ascontiguousarray(encoded.planes.transpose(1, 0, 2))
        # A cell with no left (right) neighbour gets its prev (next)
        # comparison forced to mismatch; the final ``& valid`` clears
        # whatever these force in the packing tail.
        force_edges = np.stack([~encoded.valid_no_first,
                                ~encoded.valid_no_last])[:, None, None, :]
        for start, stop in _packed_chunks(n_queries, encoded.n_rows,
                                          6 * encoded.n_words):
            diff = (stored[:, None, None, :, :]
                    ^ variants[:, :, start:stop, None, :])
            miss = diff[0] | diff[1]                  # (3, b, M, W)
            miss_centre, miss_prev, miss_next = miss
            if hd is not None:
                hd[start:stop] = self._popcount_sum(
                    miss_centre & encoded.valid)
            miss[1:] |= force_edges
            miss_prev &= miss_next
            miss_prev &= miss_centre
            miss_prev &= encoded.valid
            ed[start:stop] = self._popcount_sum(miss_prev)
        return ed, hd

    def composition_profiles(self, rows: np.ndarray,
                             n_codes: int) -> np.ndarray:
        """Per-base histograms via bitplane popcounts.

        ``code = b0 + 2*b1``, so each base's occurrence count is one
        popcount of an AND over the two planes — no per-row Python
        loop.  Codes outside the 2-bit alphabet fall back to the
        shared bincount path.
        """
        rows = np.asarray(rows, dtype=np.uint8)
        if (rows.shape[0] == 0 or rows.size == 0
                or int(rows.max()) >= 4):
            return super().composition_profiles(rows, n_codes)
        planes = pack_bitplanes(rows)
        valid, _, _ = valid_masks(rows.shape[1], planes.shape[2])
        b0 = planes[:, 0, :]
        b1 = planes[:, 1, :]
        # n_codes may exceed 4 when the *other* operand of a pairwise
        # bound carries ambiguity codes; the extra bins are zero here.
        profiles = np.zeros((rows.shape[0], max(4, int(n_codes))),
                            dtype=np.int32)
        profiles[:, 3] = self._popcount_sum(b0 & b1 & valid)       # T
        profiles[:, 1] = self._popcount_sum(b0 & ~b1 & valid)      # C
        profiles[:, 2] = self._popcount_sum(~b0 & b1 & valid)      # G
        profiles[:, 0] = (rows.shape[1] - profiles[:, 1]
                          - profiles[:, 2] - profiles[:, 3])       # A
        return profiles[:, :n_codes]


register_backend(BitpackedBackend())
