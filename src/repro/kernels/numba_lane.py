"""Optional numba lane: the packed kernel with a jitted popcount.

The container this library targets does not ship numba, and nothing
here may ``pip install`` it — so the lane is auto-detected: when
``numba`` is importable a third backend (``"numba"``) registers itself,
identical to ``bitpacked`` except that the popcount reduction runs as
a compiled loop (numpy's ufunc path materialises a per-word count
array; the loop fuses count and sum).  When numba is absent this
module is a no-op and the registry simply lists two backends.

Correctness does not depend on this lane: it reuses the bitpacked
equality/masking construction, and the cross-backend property tests
run against whatever ``available_backends()`` reports.
"""

from __future__ import annotations

import importlib.util

import numpy as np

from repro.kernels.bitpacked import BitpackedBackend
from repro.kernels.registry import register_backend

NUMBA_AVAILABLE = importlib.util.find_spec("numba") is not None

if NUMBA_AVAILABLE:
    import numba

    _M1 = np.uint64(0x5555555555555555)
    _M2 = np.uint64(0x3333333333333333)
    _M4 = np.uint64(0x0F0F0F0F0F0F0F0F)
    _H01 = np.uint64(0x0101010101010101)
    _S1 = np.uint64(1)
    _S2 = np.uint64(2)
    _S4 = np.uint64(4)
    _S56 = np.uint64(56)

    @numba.njit(cache=True)
    def _popcount_sum_rows(words):  # pragma: no cover - needs numba
        """(P, W) uint64 -> (P,) int64 fused popcount+sum."""
        out = np.empty(words.shape[0], dtype=np.int64)
        for row in range(words.shape[0]):
            total = np.uint64(0)
            for col in range(words.shape[1]):
                x = words[row, col]
                x = x - ((x >> _S1) & _M1)
                x = (x & _M2) + ((x >> _S2) & _M2)
                x = (x + (x >> _S4)) & _M4
                total += (x * _H01) >> _S56
            out[row] = np.int64(total)
        return out

    class NumbaBackend(BitpackedBackend):
        """Bitpacked counts with a numba-compiled popcount reduction."""

        name = "numba"

        @staticmethod
        def _popcount_sum(words: np.ndarray) -> np.ndarray:
            flat = np.ascontiguousarray(words).reshape(-1, words.shape[-1])
            summed = _popcount_sum_rows(flat)
            return summed.reshape(words.shape[:-1]).astype(np.intp)

    register_backend(NumbaBackend())
