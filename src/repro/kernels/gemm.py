"""The float one-hot GEMM backend (``numpy-gemm``).

The pre-registry hot path, moved verbatim out of ``StoredReference``:
each query cell's *acceptable* stored bases (the co-located read base
plus, in ED* mode, its immediate neighbours — the searchline fan-out of
Fig. 4(c)) become a ``(B, N, 4)`` float32 one-hot mask, and one BLAS
matmul against the stored one-hot counts the matches.  float32 is
exact here: every partial inner product is an integer below ``2**24``.
"""

from __future__ import annotations

import numpy as np

from repro.genome import alphabet
from repro.kernels.base import CHUNK_ELEMS, EncodedReference, KernelBackend
from repro.kernels.registry import register_backend


def _gemm_chunks(n_queries: int, n_cells: int) -> "list[tuple[int, int]]":
    """Query-block chunks bounding the one-hot encoding's memory."""
    per_query = max(1, n_cells * alphabet.ALPHABET_SIZE)
    chunk = max(1, CHUNK_ELEMS // per_query)
    return [(start, min(start + chunk, n_queries))
            for start in range(0, n_queries, chunk)]


def _acceptable_onehot(queries: np.ndarray, ed_star: bool) -> np.ndarray:
    """``(B, N, 4)`` mask of stored bases each cell would match."""
    n_queries, n_cells = queries.shape
    acceptable = np.zeros(
        (n_queries * n_cells, alphabet.ALPHABET_SIZE),
        dtype=np.float32,
    )
    flat_index = np.arange(n_queries * n_cells)
    acceptable[flat_index, queries.ravel()] = 1.0
    acceptable = acceptable.reshape(
        n_queries, n_cells, alphabet.ALPHABET_SIZE
    )
    if ed_star:
        _widen_to_ed_star(acceptable, queries)
    return acceptable


def _widen_to_ed_star(acceptable: np.ndarray, queries: np.ndarray) -> None:
    """Add the neighbour comparisons to a centre-only mask."""
    n_queries, n_cells = queries.shape
    if n_cells <= 1:
        return
    flat = acceptable.reshape(-1, acceptable.shape[2])
    index_grid = np.arange(n_queries * n_cells).reshape(n_queries, n_cells)
    # O_L: stored base j vs read base j-1 (no left neighbour at 0).
    flat[index_grid[:, 1:].ravel(), queries[:, :-1].ravel()] = 1.0
    # O_R: stored base j vs read base j+1 (none at the right edge).
    flat[index_grid[:, :-1].ravel(), queries[:, 1:].ravel()] = 1.0


def _counts_from_onehot(stored_onehot: np.ndarray,
                        acceptable: np.ndarray) -> np.ndarray:
    """Mismatch counts via one matmul against the stored one-hot."""
    n_queries, n_cells = acceptable.shape[:2]
    matched = acceptable.reshape(n_queries, -1) @ stored_onehot.T
    return (n_cells - matched).astype(np.intp)


class GemmBackend(KernelBackend):
    """One-hot float32 GEMM mismatch counts."""

    name = "numpy-gemm"

    def _counts(self, encoded: EncodedReference, queries: np.ndarray,
                *, ed_star: bool) -> np.ndarray:
        counts = np.empty((queries.shape[0], encoded.n_rows), dtype=np.intp)
        for start, stop in _gemm_chunks(queries.shape[0], encoded.n_cells):
            acceptable = _acceptable_onehot(queries[start:stop],
                                            ed_star=ed_star)
            counts[start:stop] = _counts_from_onehot(encoded.onehot,
                                                     acceptable)
        return counts

    def _counts_dual(self, encoded: EncodedReference,
                     queries: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        # The centre-only mask IS the HD encoding and one of ED*'s
        # three planes: widen it in place after the HD matmul.
        ed = np.empty((queries.shape[0], encoded.n_rows), dtype=np.intp)
        hd = np.empty_like(ed)
        for start, stop in _gemm_chunks(queries.shape[0], encoded.n_cells):
            block = queries[start:stop]
            acceptable = _acceptable_onehot(block, ed_star=False)
            hd[start:stop] = _counts_from_onehot(encoded.onehot, acceptable)
            _widen_to_ed_star(acceptable, block)
            ed[start:stop] = _counts_from_onehot(encoded.onehot, acceptable)
        return ed, hd


register_backend(GemmBackend())
