"""repro.kernels — pluggable mismatch-count kernel backends.

The registry behind every search path's ``backend=`` knob:

* ``"numpy-gemm"`` — the float32 one-hot GEMM (the original hot path);
* ``"bitpacked"`` — 2-bit-packed uint64 bitplanes, XOR + popcount;
* ``"numba"`` — the packed kernel with a jitted popcount reduction,
  registered only when numba is importable.

Selection order everywhere: explicit ``backend=`` knob >
``REPRO_KERNEL_BACKEND`` env var > ``repro.arch.autotune.plan_backend``
(cached per-machine micro-calibration).  All backends return exactly
equal integer counts — decisions, ledger events and reports are
bit-identical by construction (see ``docs/api.md``, "Kernel
backends").
"""

from repro.kernels.base import (
    ENCODED_REFERENCE_FIELDS,
    EncodedReference,
    KernelBackend,
    encode_reference,
    encoded_reference_arrays,
    encoded_reference_from_arrays,
    pack_bitplanes,
    slice_encoded_reference,
    valid_masks,
)
from repro.kernels.registry import (
    DEFAULT_BACKEND,
    KERNEL_BACKEND_ENV,
    as_backend,
    available_backends,
    get_backend,
    register_backend,
    resolve_backend,
)
from repro.kernels.gemm import GemmBackend
from repro.kernels.bitpacked import BitpackedBackend
from repro.kernels import numba_lane as _numba_lane  # noqa: F401 (registers)

__all__ = [
    "BitpackedBackend",
    "DEFAULT_BACKEND",
    "ENCODED_REFERENCE_FIELDS",
    "EncodedReference",
    "encoded_reference_arrays",
    "encoded_reference_from_arrays",
    "GemmBackend",
    "KERNEL_BACKEND_ENV",
    "KernelBackend",
    "as_backend",
    "available_backends",
    "encode_reference",
    "get_backend",
    "pack_bitplanes",
    "register_backend",
    "resolve_backend",
    "slice_encoded_reference",
    "valid_masks",
]
