"""Substrate shared by every kernel backend.

The mismatch-count primitives behind ``CamArray.search`` /
``search_batch`` / ``search_sweep`` (and the ground-truth banded DP's
counting prefilter) are pluggable *kernel backends*.  Each backend
computes the same three exact quantities:

* ``counts_batch(encoded, queries, ed_star=...)`` — per-row digital
  mismatch counts, HD or the neighbour-tolerant ED* of
  :mod:`repro.distance.ed_star`;
* ``counts_batch_dual(encoded, queries)`` — the ``(ED*, HD)`` pair from
  one shared query pass (the controller's back-to-back search trick);
* ``composition_profiles(rows, n_codes)`` — per-row base-composition
  histograms, the 1-gram prefilter of the banded DP.

**Exactness contract.**  Counts are small integers (bounded by the row
length), and every backend computes them exactly — the float32 GEMM is
exact below ``2**24``, the packed path is pure integer arithmetic — so
*every* digital decision, ledger event and report downstream is
bit-identical across backends.  The property tests in
``tests/kernels/`` enforce ``==``, not ``approx``.

This module owns the pieces every backend shares: the
:class:`EncodedReference` value (all per-reference encodings, built in
one pass over the segments), the 2-bit → uint64 bitplane packing, and
the boolean-sweep fallback that handles query codes outside ACGT
(ambiguity codes cannot be one-hot indexed or 2-bit packed, so both
exact lanes route them to the same reference comparison).

Layering: this package sits *below* ``repro.cam`` — it imports only
numpy, ``repro.errors``, ``repro.genome.alphabet`` and the boolean
reference kernels of ``repro.distance.ed_star``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.distance.ed_star import mismatch_counts_all_reads
from repro.errors import CamConfigError
from repro.genome import alphabet

#: Target element count per chunked encoding/comparison buffer — the
#: same ~8 MB bound the pre-registry GEMM path used.
CHUNK_ELEMS = 1 << 23

#: Target uint64 words per packed ``(B, M, W)`` equality buffer (8 MB).
PACKED_CHUNK_WORDS = 1 << 20

_WORD_BITS = 64
_ALL_ONES = np.uint64(0xFFFFFFFFFFFFFFFF)


def pack_bitplanes(rows: np.ndarray) -> np.ndarray:
    """``(R, N)`` uint8 DNA codes → ``(R, 2, W)`` uint64 bitplanes.

    Plane 0 holds bit 0 of each 2-bit code, plane 1 bit 1, both packed
    little-endian so code ``j`` of a row lives at bit ``j % 64`` of
    word ``j // 64``.  Tail bits beyond ``N`` are zero (callers mask
    them with :func:`valid_masks`).  Requires codes below 4.
    """
    rows = np.ascontiguousarray(rows, dtype=np.uint8)
    n_rows, n_cells = rows.shape
    n_words = max(1, (n_cells + _WORD_BITS - 1) // _WORD_BITS)
    planes = np.empty((n_rows, 2, n_words), dtype=np.uint64)
    for plane_index in (0, 1):
        bits = (rows >> plane_index) & np.uint8(1)
        packed = np.packbits(bits, axis=1, bitorder="little")
        padded = np.zeros((n_rows, n_words * 8), dtype=np.uint8)
        padded[:, :packed.shape[1]] = packed
        # Little-endian byte → word view (every supported platform).
        planes[:, plane_index, :] = padded.view("<u8")
    return planes


def valid_masks(n_cells: int,
                n_words: int) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """``(valid, valid_no_first, valid_no_last)`` word masks.

    ``valid`` keeps exactly the first *n_cells* bit positions;
    ``valid_no_first`` additionally clears position 0 and
    ``valid_no_last`` position ``n_cells - 1`` — the edge cells whose
    missing neighbour comparison contributes no ED* match.
    """
    valid = np.zeros(n_words, dtype=np.uint64)
    full_words, remainder = divmod(n_cells, _WORD_BITS)
    valid[:full_words] = _ALL_ONES
    if remainder:
        valid[full_words] = np.uint64((1 << remainder) - 1)
    no_first = valid.copy()
    no_last = valid.copy()
    if n_cells > 0:
        no_first[0] &= ~np.uint64(1)
        last_word, last_bit = divmod(n_cells - 1, _WORD_BITS)
        no_last[last_word] &= ~np.uint64(1 << last_bit)
    return valid, no_first, no_last


@dataclass(frozen=True)
class EncodedReference:
    """Every per-reference search encoding, built in one pass.

    An immutable value the backends compute *against*: the raw stored
    segments (the boolean fallback's input), the float32 one-hot the
    GEMM lane multiplies, and the 2-bit-packed uint64 bitplanes (plus
    their validity masks) the popcount lanes XOR.  Building all of
    them together is what lets a sealed :class:`repro.cam.array.
    StoredReference` stay thread-safe and encoded exactly once while
    any backend serves any session.
    """

    segments: np.ndarray        # (M, N) uint8, read-only
    onehot: np.ndarray          # (M, N * 4) float32, read-only
    planes: np.ndarray          # (M, 2, W) uint64, read-only
    valid: np.ndarray           # (W,) uint64 in-range bit mask
    valid_no_first: np.ndarray  # (W,) mask minus cell 0
    valid_no_last: np.ndarray   # (W,) mask minus cell N-1

    @property
    def n_rows(self) -> int:
        return self.segments.shape[0]

    @property
    def n_cells(self) -> int:
        return self.segments.shape[1]

    @property
    def n_words(self) -> int:
        return self.planes.shape[2]


def encode_reference(segments: np.ndarray) -> EncodedReference:
    """One encoding pass producing every backend's search cache.

    float32 is exact for the GEMM lane: every partial inner product is
    an integer below ``2**24``.  Stored codes are alphabet-checked at
    write time, so the 2-bit packing is always faithful.
    """
    segments = np.ascontiguousarray(segments, dtype=np.uint8)
    n_rows, n_cells = segments.shape
    onehot = np.zeros((n_rows * n_cells, alphabet.ALPHABET_SIZE),
                      dtype=np.float32)
    if segments.size:
        onehot[np.arange(n_rows * n_cells), segments.ravel()] = 1.0
    onehot = onehot.reshape(n_rows, n_cells * alphabet.ALPHABET_SIZE)
    planes = pack_bitplanes(segments)
    valid, no_first, no_last = valid_masks(n_cells, planes.shape[2])
    for array in (segments, onehot, planes, valid, no_first, no_last):
        array.setflags(write=False)
    return EncodedReference(segments=segments, onehot=onehot, planes=planes,
                            valid=valid, valid_no_first=no_first,
                            valid_no_last=no_last)


#: The payload arrays of an :class:`EncodedReference`, in the fixed
#: serialisation order the shared-memory transport uses.
ENCODED_REFERENCE_FIELDS = (
    "segments", "onehot", "planes",
    "valid", "valid_no_first", "valid_no_last",
)


def encoded_reference_arrays(
        encoded: EncodedReference) -> "tuple[tuple[str, np.ndarray], ...]":
    """``(name, array)`` pairs of an encoding's payload, fixed order.

    The single definition of "everything a worker process needs to
    search a reference" — :mod:`repro.parallel` serialises exactly
    these arrays into a shared-memory segment, and
    :func:`encoded_reference_from_arrays` rebuilds the value from
    them, so the transport cannot drift from the dataclass.
    """
    return tuple((name, getattr(encoded, name))
                 for name in ENCODED_REFERENCE_FIELDS)


def slice_encoded_reference(encoded: EncodedReference, start: int,
                            stop: int) -> EncodedReference:
    """A zero-copy row slice ``[start:stop)`` of an encoding.

    Because every per-row cache (segments, one-hot, bitplanes) is a
    pure per-row function of the stored segments, slicing the full
    encoding is **bit-identical** to encoding the sliced segments —
    which is what lets one mmap-opened reference
    (:mod:`repro.refstore`) serve a sharded pipeline without an
    encoding pass per shard.  The validity masks depend only on the
    cell width, so they are shared by every slice.
    """
    start, stop = int(start), int(stop)
    n_rows = encoded.segments.shape[0]
    if not (0 <= start < stop <= n_rows):
        raise CamConfigError(
            f"row slice [{start}, {stop}) is outside the encoding's "
            f"{n_rows} rows"
        )
    return EncodedReference(
        segments=encoded.segments[start:stop],
        onehot=encoded.onehot[start:stop],
        planes=encoded.planes[start:stop],
        valid=encoded.valid,
        valid_no_first=encoded.valid_no_first,
        valid_no_last=encoded.valid_no_last,
    )


def encoded_reference_from_arrays(
        arrays: "dict[str, np.ndarray]") -> EncodedReference:
    """Rebuild an :class:`EncodedReference` from its payload arrays.

    The inverse of :func:`encoded_reference_arrays` for zero-copy
    transports: the arrays are adopted as-is (marked read-only, never
    copied, no re-encoding pass), so views over a shared-memory buffer
    stay views.
    """
    missing = [name for name in ENCODED_REFERENCE_FIELDS
               if name not in arrays]
    if missing:
        raise CamConfigError(
            f"encoded-reference payload is missing arrays: {missing}"
        )
    for name in ENCODED_REFERENCE_FIELDS:
        arrays[name].setflags(write=False)
    return EncodedReference(**{name: arrays[name]
                               for name in ENCODED_REFERENCE_FIELDS})


class KernelBackend:
    """Base class of the mismatch-count kernel backends.

    Subclasses implement :meth:`_counts` (and optionally
    :meth:`_counts_dual` and :meth:`composition_profiles`); the public
    entry points here own what must never differ between backends —
    the exact-lane eligibility gate and the shared boolean fallback
    for queries carrying non-ACGT ambiguity codes.
    """

    #: Registry name; subclasses override.
    name = "abstract"

    # -- public entry points ----------------------------------------------

    def counts_batch(self, encoded: EncodedReference, queries: np.ndarray,
                     *, ed_star: bool) -> np.ndarray:
        """Exact ``(B, M)`` mismatch counts (ED* or Hamming)."""
        if not self.exact_lane_eligible(queries):
            return self._fallback_counts(encoded.segments, queries,
                                         ed_star=ed_star)
        return self._counts(encoded, queries, ed_star=ed_star)

    def counts_batch_dual(
            self, encoded: EncodedReference,
            queries: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """``(ED*, HD)`` count blocks sharing one query pass."""
        if not self.exact_lane_eligible(queries):
            ed = self._fallback_counts(encoded.segments, queries,
                                       ed_star=True)
            hd = self._fallback_counts(encoded.segments, queries,
                                       ed_star=False)
            return ed, hd
        return self._counts_dual(encoded, queries)

    def composition_profiles(self, rows: np.ndarray,
                             n_codes: int) -> np.ndarray:
        """``(R, n_codes)`` int32 base-composition histograms.

        The 1-gram prefilter input of
        :func:`repro.distance.edit_distance.composition_lower_bound`.
        Unlike the count kernels this accepts arbitrary code values
        (the ground truth labels raw reads); packed overrides fall
        back here when a code does not fit 2 bits.
        """
        rows = np.asarray(rows, dtype=np.uint8)
        if rows.shape[0] == 0:
            return np.zeros((0, n_codes), dtype=np.int32)
        return np.stack(
            [np.bincount(row, minlength=n_codes) for row in rows]
        ).astype(np.int32)

    # -- shared gates ------------------------------------------------------

    @staticmethod
    def exact_lane_eligible(queries: np.ndarray) -> bool:
        """Whether the backend's exact lane can encode this search.

        Stored codes are alphabet-checked at write time; only query
        codes outside ACGT (which neither a one-hot lookup nor a 2-bit
        packing can represent) force the boolean comparison fallback.
        """
        if queries.shape[0] == 0:
            return False
        return int(queries.max()) < alphabet.ALPHABET_SIZE

    @staticmethod
    def _fallback_counts(segments: np.ndarray, queries: np.ndarray,
                         *, ed_star: bool) -> np.ndarray:
        """Boolean-sweep reference (non-ACGT queries), memory-bounded."""
        if ed_star:
            return mismatch_counts_all_reads(segments, queries)
        n_queries = queries.shape[0]
        counts = np.empty((n_queries, segments.shape[0]), dtype=np.intp)
        plane_elems = max(1, segments.shape[0] * segments.shape[1])
        chunk = max(1, CHUNK_ELEMS // plane_elems)
        for start in range(0, n_queries, chunk):
            block = queries[start:start + chunk]
            counts[start:start + chunk] = np.count_nonzero(
                segments[None, :, :] != block[:, None, :], axis=2
            )
        return counts

    # -- backend lanes -----------------------------------------------------

    def _counts(self, encoded: EncodedReference, queries: np.ndarray,
                *, ed_star: bool) -> np.ndarray:
        raise NotImplementedError

    def _counts_dual(self, encoded: EncodedReference,
                     queries: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        ed = self._counts(encoded, queries, ed_star=True)
        hd = self._counts(encoded, queries, ed_star=False)
        return ed, hd

    def __repr__(self) -> str:
        return f"<{type(self).__name__} {self.name!r}>"
