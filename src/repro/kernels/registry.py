"""The kernel-backend registry and the one backend-selection rule.

Every search path resolves its backend through :func:`resolve_backend`
with the same precedence:

1. an **explicit** ``backend=`` knob (a registered name or a
   :class:`~repro.kernels.base.KernelBackend` instance);
2. the ``REPRO_KERNEL_BACKEND`` environment variable;
3. :func:`repro.arch.autotune.plan_backend` — a cached per-machine
   micro-calibration over the registered backends.

Unknown names raise :class:`~repro.errors.CamConfigError` listing what
is registered, so a typo fails at the constructor boundary rather than
mid-stream.
"""

from __future__ import annotations

import os

from repro.errors import CamConfigError
from repro.kernels.base import KernelBackend

#: Environment variable overriding the autotuned backend choice.
KERNEL_BACKEND_ENV = "REPRO_KERNEL_BACKEND"

#: The backend used when no knob, env var or autotune result applies
#: (also the pre-registry behaviour, so bare ``StoredReference`` use
#: stays unchanged).
DEFAULT_BACKEND = "numpy-gemm"

_REGISTRY: "dict[str, KernelBackend]" = {}


def register_backend(backend: KernelBackend) -> KernelBackend:
    """Register *backend* under ``backend.name`` (idempotent)."""
    if not backend.name or backend.name == "abstract":
        raise CamConfigError(
            f"kernel backend {backend!r} must define a concrete name"
        )
    _REGISTRY[backend.name] = backend
    return backend


def available_backends() -> "tuple[str, ...]":
    """The registered backend names, sorted."""
    return tuple(sorted(_REGISTRY))


def get_backend(name: str) -> KernelBackend:
    """Look up a registered backend by name."""
    try:
        return _REGISTRY[name]
    except (KeyError, TypeError):
        raise CamConfigError(
            f"unknown kernel backend {name!r}; registered backends: "
            f"{', '.join(available_backends())}"
        ) from None


def as_backend(choice: "str | KernelBackend | None") -> KernelBackend:
    """Coerce an explicit choice (``None`` → :data:`DEFAULT_BACKEND`).

    Unlike :func:`resolve_backend` this never consults the environment
    or the autotuner — it is the default for direct
    ``StoredReference.counts*`` calls, which stay on the GEMM lane
    unless a caller says otherwise.
    """
    if choice is None:
        return get_backend(DEFAULT_BACKEND)
    if isinstance(choice, KernelBackend):
        return choice
    return get_backend(choice)


def resolve_backend(choice: "str | KernelBackend | None" = None
                    ) -> KernelBackend:
    """Resolve the effective backend: explicit > env var > autotune."""
    if isinstance(choice, KernelBackend):
        return choice
    if choice is not None:
        return get_backend(choice)
    env_choice = os.environ.get(KERNEL_BACKEND_ENV)
    if env_choice:
        try:
            return get_backend(env_choice)
        except CamConfigError as error:
            raise CamConfigError(
                f"{KERNEL_BACKEND_ENV}={env_choice!r}: {error}"
            ) from None
    # Function-level import: arch.autotune imports this package.
    from repro.arch.autotune import plan_backend
    return get_backend(plan_backend())
