"""Exception hierarchy for the ASMCap reproduction library.

All library-specific exceptions derive from :class:`ReproError` so callers
can catch everything the library raises with a single ``except`` clause
while still being able to distinguish configuration problems from data
problems.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every exception raised by :mod:`repro`."""


class SequenceError(ReproError):
    """A DNA sequence is malformed (bad alphabet, bad length, ...)."""


class AlphabetError(SequenceError):
    """A character outside the ``ACGT`` alphabet was encountered."""


class EditModelError(ReproError):
    """An edit-injection model was configured with invalid rates."""


class CamConfigError(ReproError):
    """A CAM array or cell was configured inconsistently."""

    # Raised, for example, when a stored segment does not fit the row
    # width, or when a search is issued against an empty array.


class ArchConfigError(ReproError):
    """An accelerator architecture configuration is invalid."""


class ThresholdError(ReproError):
    """A matching threshold is out of the representable range."""


class DatasetError(ReproError):
    """A dataset could not be built or parsed (FASTA/FASTQ included)."""


class ExperimentError(ReproError):
    """An experiment driver was invoked with inconsistent parameters."""


class LedgerCompactionError(ReproError):
    """A cost-ledger compaction rule was violated.

    Raised when a view meets a :class:`~repro.cost.events.
    CompactionCheckpoint` anywhere but at the head of the event
    sequence, or when ledgers are merged in a way that would place a
    checkpoint mid-stream — both would silently change the float
    accumulation order the views guarantee (see DESIGN.md,
    "Cost-ledger contract").
    """


class ServiceError(ReproError):
    """A streaming mapping service was used outside its lifecycle."""


class RefStoreError(CamConfigError):
    """An on-disk reference store or catalog operation failed.

    Raised when a stored-reference file is corrupt, truncated, of the
    wrong format/version, or when a :class:`~repro.refstore.catalog.
    ReferenceCatalog` rule is violated (evicting a pinned reference,
    borrowing an unknown name, exceeding lifecycle bounds).  Derives
    from :class:`CamConfigError` so transport-agnostic callers that
    already guard shared-memory attach failures catch file-store
    failures with the same ``except`` clause.
    """
