"""repro — a reproduction of ASMCap (DAC 2023).

ASMCap is an approximate-string-matching accelerator for genome
sequence analysis built on capacitive multi-level content-addressable
memories.  This library re-implements the full system in Python:

* :mod:`repro.genome` — genomics substrate (sequences, synthetic
  references, edit injection, datasets, FASTA/FASTQ, k-mers);
* :mod:`repro.distance` — distance kernels (ED ground truth, HD, the
  neighbour-tolerant ED* estimate);
* :mod:`repro.cam` — behavioural circuit models of the charge- and
  current-domain ML-CAM arrays (variation, energy, sensing);
* :mod:`repro.core` — the paper's contribution: the matching flow with
  the HDAC and TASR misjudgment-correction strategies;
* :mod:`repro.cost` — unified cost accounting: typed hardware events
  collected in a ledger, with energy/latency/power as derived views
  and measured strategy profiles for Fig. 8;
* :mod:`repro.arch` — the 512-array system with timing/power models;
* :mod:`repro.service` — the long-running streaming entry point:
  incremental read feed, autotuned micro-batches, bounded-memory
  ledgers via compaction;
* :mod:`repro.baselines` — EDAM, CM-CPU, ReSMA, SaVI, Kraken-like;
* :mod:`repro.eval` — F1 evaluation machinery;
* :mod:`repro.experiments` — drivers regenerating every paper artifact.

Quick start::

    from repro.genome import build_dataset
    from repro.cam import CamArray
    from repro.core import AsmCapMatcher

    dataset = build_dataset("A", n_reads=32, n_segments=64)
    array = CamArray(rows=64, cols=256)
    array.store(dataset.segments)
    matcher = AsmCapMatcher(array, dataset.model)
    outcome = matcher.match(dataset.reads[0].read.codes, threshold=4)
"""

from repro import constants
from repro.errors import (
    AlphabetError,
    ArchConfigError,
    CamConfigError,
    DatasetError,
    EditModelError,
    ExperimentError,
    LedgerCompactionError,
    ReproError,
    SequenceError,
    ServiceError,
    ThresholdError,
)

__version__ = "1.0.0"

__all__ = [
    "AlphabetError",
    "ArchConfigError",
    "CamConfigError",
    "DatasetError",
    "EditModelError",
    "ExperimentError",
    "LedgerCompactionError",
    "ReproError",
    "SequenceError",
    "ServiceError",
    "ThresholdError",
    "constants",
    "__version__",
]
