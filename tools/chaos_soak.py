#!/usr/bin/env python
"""Chaos soak: seeded fault schedules across the full service matrix.

Fans ``--schedules`` generated :class:`~repro.faults.plan.FaultPlan`
schedules across the :data:`~repro.faults.scenarios.SCENARIOS` chaos
matrix (batched + sharded engines, thread + process fan-out, both
kernel backends, compaction on and off, stream / store / catalog /
frontend routes) and judges every run with the
:class:`~repro.faults.checker.InvariantChecker` trichotomy: each
injected fault must either **surface** as its documented typed error
or be **tolerated** with results bit-identical to the fault-free
baseline — anything else (undocumented error type, silent result
drift, leaked shm segment / process / thread / catalog lease) is a
violation and fails the soak.

Schedule ``i`` runs scenario ``SCENARIOS[i % len]`` under plan seed
``seed * 1_000_003 + i`` — fully deterministic, so one integer
reproduces any soak exactly.  After the sweep a reproducibility pass
re-runs a sample of the schedules and demands byte-identical verdict
records; nondeterminism in the harness itself is a failure too.

Usage::

    PYTHONPATH=src python tools/chaos_soak.py                  # 24 schedules
    PYTHONPATH=src python tools/chaos_soak.py --schedules 64
    PYTHONPATH=src python tools/chaos_soak.py --seed 7 --json out.json
    PYTHONPATH=src python tools/chaos_soak.py --smoke          # CI tier-1

Exit status is non-zero if any verdict is not ok or the replay pass
diverges.  ``--json`` writes the full verdict records (the nightly
``chaos-soak`` artifact).
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.faults.checker import InvariantChecker  # noqa: E402
from repro.faults.plan import FaultPlan  # noqa: E402
from repro.faults.scenarios import SCENARIOS, get_scenario  # noqa: E402

#: Schedule *i* of a soak seeded *s* uses plan seed ``s*STRIDE + i``
#: (a prime stride keeps soak seeds from aliasing each other's plans).
SEED_STRIDE = 1_000_003

#: ``--smoke`` keeps CI fast: fewer schedules, thread-only scenarios
#: (no spawn cost), and a smaller replay sample.
SMOKE_SCHEDULES = 8

#: How many schedules the reproducibility pass replays.
REPLAY_SAMPLE = 4


def scenario_matrix(smoke: bool):
    """The scenarios a soak cycles through (smoke drops process
    fan-out — spawn startup dominates a tier-1 budget)."""
    if not smoke:
        return SCENARIOS
    return tuple(scenario for scenario in SCENARIOS
                 if scenario.shard_engine != "process")


def plan_for(schedule: int, seed: int, scenario) -> FaultPlan:
    return FaultPlan.generate(
        seed * SEED_STRIDE + schedule,
        kinds=scenario.fault_kinds,
        max_hits=scenario.max_hits,
        points=scenario.reachable_points,
    )


def run_schedule(checker: InvariantChecker, schedule: int, seed: int,
                 smoke: bool) -> "dict[str, object]":
    matrix = scenario_matrix(smoke)
    scenario = matrix[schedule % len(matrix)]
    plan = plan_for(schedule, seed, scenario)
    started = time.perf_counter()
    verdict = checker.check(scenario, plan)
    record = verdict.describe()
    record["schedule"] = schedule
    record["plan"] = [fault.describe() for fault in plan.faults]
    record["elapsed_s"] = round(time.perf_counter() - started, 3)
    return record


def _stable(record: "dict[str, object]") -> "dict[str, object]":
    """A record minus its timing — the part replay must reproduce."""
    return {key: value for key, value in record.items()
            if key != "elapsed_s"}


def run_soak(schedules: int, seed: int, smoke: bool,
             log=print) -> "tuple[list[dict], list[str]]":
    """Run the sweep + replay pass; return (records, failures)."""
    checker = InvariantChecker()
    records: "list[dict[str, object]]" = []
    failures: "list[str]" = []
    for schedule in range(schedules):
        record = run_schedule(checker, schedule, seed, smoke)
        records.append(record)
        status = "ok " if record["ok"] else "FAIL"
        log(f"[{schedule:3d}] {status} {record['scenario']:<36} "
            f"{record['verdict']:<9} "
            f"fired={len(record['fired'])} "
            f"({record['elapsed_s']:.2f}s)")
        if not record["ok"]:
            failures.append(
                f"schedule {schedule} ({record['scenario']}): "
                f"{record['verdict']} {record['detail']} "
                f"hygiene={record['hygiene']}"
            )

    # Reproducibility: same seed => same schedule => same verdict,
    # byte for byte.  A fresh checker rebuilds its own baselines.
    replay = InvariantChecker()
    step = max(1, schedules // REPLAY_SAMPLE)
    for schedule in range(0, schedules, step):
        again = run_schedule(replay, schedule, seed, smoke)
        if _stable(again) != _stable(records[schedule]):
            failures.append(
                f"schedule {schedule} is nondeterministic: replay "
                f"produced {_stable(again)!r} vs "
                f"{_stable(records[schedule])!r}"
            )
    log(f"replayed {len(range(0, schedules, step))} schedules "
        f"for determinism")
    return records, failures


def main(argv: "list[str] | None" = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument("--schedules", type=int, default=24,
                        help="seeded fault schedules to run (default 24)")
    parser.add_argument("--seed", type=int, default=0,
                        help="soak seed; one integer reproduces the "
                        "whole sweep (default 0)")
    parser.add_argument("--smoke", action="store_true",
                        help=f"tier-1 mode: {SMOKE_SCHEDULES} schedules, "
                        f"thread-only scenarios")
    parser.add_argument("--json", type=Path, default=None,
                        metavar="PATH",
                        help="write the verdict records as JSON")
    parser.add_argument("--scenario", default=None,
                        help="pin every schedule to one scenario name "
                        "(debugging)")
    args = parser.parse_args(argv)

    schedules = SMOKE_SCHEDULES if args.smoke else args.schedules
    if schedules <= 0:
        parser.error("--schedules must be positive")
    if args.scenario is not None:
        get_scenario(args.scenario)  # fail fast on typos
        global scenario_matrix  # noqa: PLW0603 - debug pin
        pinned = (get_scenario(args.scenario),)
        scenario_matrix = lambda smoke: pinned  # noqa: E731

    records, failures = run_soak(schedules, args.seed, args.smoke)

    verdicts = [record["verdict"] for record in records]
    summary = {
        "seed": args.seed,
        "smoke": args.smoke,
        "schedules": schedules,
        "scenarios": sorted({r["scenario"] for r in records}),
        "surfaced": verdicts.count("surfaced"),
        "tolerated": verdicts.count("tolerated"),
        "violations": verdicts.count("violation"),
        "failures": failures,
    }
    if args.json is not None:
        args.json.parent.mkdir(parents=True, exist_ok=True)
        args.json.write_text(
            json.dumps({"version": 1, "summary": summary,
                        "records": records}, indent=2) + "\n",
            encoding="utf-8",
        )
        print(f"wrote {args.json}")

    print(f"chaos soak: {schedules} schedules, "
          f"{summary['surfaced']} surfaced, "
          f"{summary['tolerated']} tolerated, "
          f"{summary['violations']} violations")
    if failures:
        for failure in failures:
            print(f"FAIL: {failure}")
        return 1
    print("OK: every fault surfaced or was tolerated; no leaks")
    return 0


if __name__ == "__main__":
    sys.exit(main())
