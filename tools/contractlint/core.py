"""Engine of the contract linter: findings, suppressions, registry.

A :class:`Checker` inspects one parsed file at a time through
:meth:`Checker.check` and may emit repo-wide findings from
:meth:`Checker.finalize` (e.g. "this registered hook point is never
fired").  The engine owns everything contract-agnostic: walking the
tree, parsing, repo-relative paths, per-line suppression comments with
their mandatory audit reasons, and the ``pyproject.toml`` allowlists.

Suppression grammar (enforced by the engine itself — ``CL001``/
``CL002`` are findings like any other)::

    x = risky()  # contractlint: disable=CL101 -- calibration timer only

The ``-- reason`` tail is **required**: a suppression is an exception
to a binding contract, and the audit trail of *why* lives next to it.
Multiple codes separate with commas (``disable=CL101,CL301 -- ...``).
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from pathlib import Path

#: Directory names never descended into.
_SKIP_DIRS = {"__pycache__", ".git", ".ruff_cache", ".pytest_cache",
              ".hypothesis", "build", "dist"}

#: The engine's own meta codes (suppression audit trail).
META_CODES = {
    "CL001": "suppression comment is missing its '-- reason' audit tail",
    "CL002": "suppression comment names an unknown error code",
}

_SUPPRESS_RE = re.compile(
    r"#\s*contractlint:\s*disable=([A-Za-z0-9_,\s]+?)"
    r"(?:\s+--\s*(\S.*))?$"
)


@dataclass(frozen=True)
class Finding:
    """One contract violation at a source location."""

    path: str           # repo-relative, posix separators
    line: int           # 1-based
    col: int            # 0-based (ast convention)
    code: str           # stable "CLxxx" identifier
    message: str

    def render(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.code} {self.message}"

    def describe(self) -> "dict[str, object]":
        """JSON-ready record (the findings artifact rows)."""
        return {"path": self.path, "line": self.line, "col": self.col,
                "code": self.code, "message": self.message}


@dataclass(frozen=True)
class LintConfig:
    """Resolved linter configuration (defaults + ``pyproject.toml``).

    ``allow`` maps an error code to repo-relative path prefixes that
    are exempt from it — the allowlist for sanctioned sites (e.g. a
    legacy RNG module exempt from ``CL102``).  Prefixes match whole
    path segments: ``src/repro/cam`` allows the package, not
    ``src/repro/camera.py``.
    """

    allow: "dict[str, tuple[str, ...]]" = field(default_factory=dict)

    def allows(self, code: str, rel_path: str) -> bool:
        for prefix in self.allow.get(code, ()):
            prefix = prefix.rstrip("/")
            if rel_path == prefix or rel_path.startswith(prefix + "/"):
                return True
        return False


def load_config(root: Path) -> LintConfig:
    """Read ``[tool.contractlint]`` from *root*'s ``pyproject.toml``."""
    try:
        import tomllib
    except ImportError:  # Python 3.10: no stdlib TOML parser.
        # The repo carries no allowlist entries today, so linting with
        # the defaults is exact; the CI gate runs on 3.12 regardless.
        return LintConfig()

    pyproject = root / "pyproject.toml"
    if not pyproject.is_file():
        return LintConfig()
    with open(pyproject, "rb") as handle:
        table = tomllib.load(handle)
    section = table.get("tool", {}).get("contractlint", {})
    allow_raw = section.get("allow", {})
    allow = {str(code): tuple(str(p) for p in paths)
             for code, paths in allow_raw.items()}
    return LintConfig(allow=allow)


@dataclass
class FileContext:
    """One parsed file handed to every relevant checker."""

    rel_path: str
    tree: ast.Module
    source: str


@dataclass
class RepoContext:
    """Repo-level facts shared by the checkers.

    ``knob_names`` come from the parameter list of
    ``validate_service_knobs`` in ``src/repro/knobs.py`` (plus the
    service-layer aliases that validate through it) and ``hook_points``
    from the ``HOOK_POINTS`` tuple in ``src/repro/faults/plan.py`` —
    both read from *source*, never imported, so the linter works on an
    unimportable tree.  Checkers stash cross-file state in ``shared``
    during :meth:`Checker.check` and read it back in
    :meth:`Checker.finalize`.
    """

    root: Path
    config: LintConfig
    knob_names: "tuple[str, ...]" = ()
    hook_points: "tuple[str, ...]" = ()
    shared: "dict[str, object]" = field(default_factory=dict)


class Checker:
    """Base class: subclass, set ``name``/``codes``, register.

    ``codes`` maps every stable code the checker may emit to the
    one-line contract it guards (rendered by ``--list-codes`` and the
    DESIGN.md table).  ``scope`` is a tuple of repo-relative path
    prefixes the checker applies to.
    """

    name: str = ""
    codes: "dict[str, str]" = {}
    scope: "tuple[str, ...]" = ("src/repro",)

    def relevant(self, rel_path: str) -> bool:
        return any(rel_path == prefix or rel_path.startswith(prefix + "/")
                   for prefix in self.scope)

    def check(self, ctx: FileContext, repo: RepoContext) -> "list[Finding]":
        raise NotImplementedError

    def finalize(self, repo: RepoContext) -> "list[Finding]":
        return []


_REGISTRY: "list[type[Checker]]" = []


def register(cls: "type[Checker]") -> "type[Checker]":
    """Class decorator adding a checker to the global registry."""
    _REGISTRY.append(cls)
    return cls


def registered_checkers() -> "tuple[type[Checker], ...]":
    _ensure_checkers_loaded()
    return tuple(_REGISTRY)


def all_codes() -> "dict[str, str]":
    """Every stable code -> the one-line contract it guards."""
    codes = dict(META_CODES)
    for cls in registered_checkers():
        codes.update(cls.codes)
    return codes


def _ensure_checkers_loaded() -> None:
    # Importing the package registers every checker module exactly once.
    import tools.contractlint.checkers  # noqa: F401


# -- suppressions ------------------------------------------------------------


@dataclass(frozen=True)
class Suppression:
    line: int
    codes: "tuple[str, ...]"
    reason: "str | None"


def parse_suppressions(source: str) -> "list[Suppression]":
    """Suppressions from *comment tokens* only — a docstring that merely
    quotes the grammar is not a suppression."""
    import io
    import tokenize

    out: "list[Suppression]" = []
    try:
        tokens = list(tokenize.generate_tokens(io.StringIO(source).readline))
    except (tokenize.TokenError, SyntaxError):  # pragma: no cover
        return out
    for token in tokens:
        if token.type != tokenize.COMMENT:
            continue
        match = _SUPPRESS_RE.search(token.string)
        if match is None:
            continue
        codes = tuple(code.strip() for code in match.group(1).split(",")
                      if code.strip())
        out.append(Suppression(line=token.start[0], codes=codes,
                               reason=match.group(2)))
    return out


def _apply_suppressions(findings: "list[Finding]", ctx: FileContext,
                        known_codes: "dict[str, str]") -> "list[Finding]":
    """Drop suppressed findings; emit the suppression meta findings."""
    suppressions = parse_suppressions(ctx.source)
    out: "list[Finding]" = []
    suppressed: "dict[int, set[str]]" = {}
    for sup in suppressions:
        if sup.reason is None:
            out.append(Finding(
                path=ctx.rel_path, line=sup.line, col=0, code="CL001",
                message="suppression needs an audit reason: "
                        "'# contractlint: disable=CLxxx -- why'",
            ))
            continue  # a reasonless suppression suppresses nothing
        for code in sup.codes:
            if code not in known_codes:
                out.append(Finding(
                    path=ctx.rel_path, line=sup.line, col=0, code="CL002",
                    message=f"suppression names unknown code {code!r}",
                ))
            else:
                suppressed.setdefault(sup.line, set()).add(code)
    for finding in findings:
        if finding.code in suppressed.get(finding.line, ()):
            continue
        out.append(finding)
    return out


# -- repo facts read from source ---------------------------------------------

#: Aliases validated through the same gate as a canonical knob: the
#: service layer's ``shard_engine=`` is the pipeline's ``engine=``.
KNOB_ALIASES = ("shard_engine",)

#: Fallbacks when the source of truth is absent (tiny test repos).
_FALLBACK_KNOBS = ("micro_batch", "compaction", "max_workers",
                   "backend", "engine")


def read_knob_names(root: Path) -> "tuple[str, ...]":
    """Parameter names of ``validate_service_knobs`` in knobs.py."""
    path = root / "src" / "repro" / "knobs.py"
    if not path.is_file():
        return _FALLBACK_KNOBS + KNOB_ALIASES
    tree = ast.parse(path.read_text(encoding="utf-8"))
    for node in ast.walk(tree):
        if (isinstance(node, ast.FunctionDef)
                and node.name == "validate_service_knobs"):
            args = node.args
            names = [a.arg for a in args.posonlyargs + args.args
                     + args.kwonlyargs]
            return tuple(names) + KNOB_ALIASES
    return _FALLBACK_KNOBS + KNOB_ALIASES


def read_hook_points(root: Path) -> "tuple[str, ...]":
    """The ``HOOK_POINTS`` literal in ``src/repro/faults/plan.py``."""
    path = root / "src" / "repro" / "faults" / "plan.py"
    if not path.is_file():
        return ()
    tree = ast.parse(path.read_text(encoding="utf-8"))
    for node in tree.body:
        if isinstance(node, ast.Assign):
            targets = [t.id for t in node.targets
                       if isinstance(t, ast.Name)]
            if "HOOK_POINTS" in targets and isinstance(node.value, ast.Tuple):
                return tuple(elt.value for elt in node.value.elts
                             if isinstance(elt, ast.Constant)
                             and isinstance(elt.value, str))
    return ()


# -- the engine --------------------------------------------------------------


def _iter_python_files(root: Path) -> "list[Path]":
    files: "list[Path]" = []
    for base in ("src", "benchmarks", "tools", "examples"):
        top = root / base
        if not top.is_dir():
            continue
        for path in sorted(top.rglob("*.py")):
            if not any(part in _SKIP_DIRS for part in path.parts):
                files.append(path)
    return files


def _sort_key(finding: Finding) -> tuple:
    return (finding.path, finding.line, finding.col, finding.code)


def run_lint(root: "Path | str",
             files: "list[Path] | None" = None) -> "list[Finding]":
    """Lint the repo rooted at *root*; returns sorted findings.

    *files* restricts the scan (CLI positional arguments); repo-wide
    finalize checks (e.g. "hook point never fired") only run on a full
    scan, since a partial file list would make them vacuously noisy.
    """
    root = Path(root).resolve()
    config = load_config(root)
    repo = RepoContext(root=root, config=config,
                       knob_names=read_knob_names(root),
                       hook_points=read_hook_points(root))
    checkers = [cls() for cls in registered_checkers()]
    known = all_codes()
    full_scan = files is None
    if files is None:
        files = _iter_python_files(root)
    findings: "list[Finding]" = []
    for path in files:
        rel_path = Path(path).resolve().relative_to(root).as_posix()
        source = Path(path).read_text(encoding="utf-8")
        try:
            tree = ast.parse(source)
        except SyntaxError as exc:
            findings.append(Finding(
                path=rel_path, line=exc.lineno or 1, col=0, code="CL002",
                message=f"file does not parse: {exc.msg}",
            ))
            continue
        ctx = FileContext(rel_path=rel_path, tree=tree, source=source)
        per_file: "list[Finding]" = []
        for checker in checkers:
            if checker.relevant(rel_path):
                per_file.extend(checker.check(ctx, repo))
        per_file = [f for f in per_file
                    if not config.allows(f.code, f.path)]
        findings.extend(_apply_suppressions(per_file, ctx, known))
    if full_scan:
        for checker in checkers:
            findings.extend(f for f in checker.finalize(repo)
                            if not config.allows(f.code, f.path))
    return sorted(findings, key=_sort_key)


def lint_source(source: str, rel_path: str,
                repo: "RepoContext | None" = None) -> "list[Finding]":
    """Lint one in-memory file as if it lived at *rel_path*.

    The fixture-test entry point: golden files are read from
    ``tests/tools/fixtures`` and checked under the production path
    they impersonate.  Finalize checks do not run (they are repo-wide).
    """
    if repo is None:
        repo = RepoContext(root=Path("."), config=LintConfig(),
                           knob_names=_FALLBACK_KNOBS + KNOB_ALIASES,
                           hook_points=())
    tree = ast.parse(source)
    ctx = FileContext(rel_path=rel_path, tree=tree, source=source)
    findings: "list[Finding]" = []
    for cls in registered_checkers():
        checker = cls()
        if checker.relevant(rel_path):
            findings.extend(checker.check(ctx, repo))
    findings = [f for f in findings
                if not repo.config.allows(f.code, f.path)]
    return sorted(_apply_suppressions(findings, ctx, all_codes()),
                  key=_sort_key)
