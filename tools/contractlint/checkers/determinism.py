"""CL1xx — determinism: no un-keyed entropy on decision paths.

The binding contract (DESIGN.md, "Determinism"): every decision the
library makes is a pure function of explicit seeds and keys — mapping
reports are bit-identical for any scheduling, backend, engine or
process count.  Statically that means nothing under ``src/repro`` may
draw from an entropy source that is not keyed by an argument:

* ``CL101`` — wall-clock / raw-entropy calls whose result can never be
  keyed: ``time.time``/``time.time_ns``, ``datetime.now``/``utcnow``/
  ``today``, ``os.urandom``, ``uuid.uuid1``/``uuid4``, anything from
  ``secrets``.
* ``CL102`` — RNG constructed without a seed: ``np.random.default_rng()``
  or ``random.Random()`` with no argument (or an explicit ``None``
  first argument) hands the OS entropy pool a vote in a decision.
* ``CL103`` — draws from the hidden *global* RNG state:
  ``np.random.<draw>()`` module-level functions and ``random.<draw>()``
  module-level functions (``random.Random`` construction is CL102's
  business; ``np.random.default_rng``/``Generator`` are constructors,
  not draws).

``time.perf_counter`` is deliberately *not* flagged: it is the
monotonic latency instrument of the stats/autotune paths, and the
cross-backend/engine bit-identity contract (enforced at runtime by the
equivalence suites) is exactly the proof that timing never reaches a
decision.
"""

from __future__ import annotations

import ast

from tools.contractlint.core import Checker, FileContext, Finding, RepoContext, register

#: (module, attr) calls that are wall-clock or raw entropy, always.
_FORBIDDEN_CALLS = {
    ("time", "time"), ("time", "time_ns"),
    ("os", "urandom"),
    ("uuid", "uuid1"), ("uuid", "uuid4"),
    ("datetime", "now"), ("datetime", "utcnow"), ("datetime", "today"),
    ("date", "today"),
}

#: Draw functions living on the hidden module-global RNG state.
_NP_RANDOM_DRAWS = {
    "rand", "randn", "randint", "random", "random_sample", "ranf",
    "sample", "choice", "shuffle", "permutation", "seed", "bytes",
    "uniform", "normal", "standard_normal", "poisson", "binomial",
    "exponential", "beta", "gamma", "integers",
}
_RANDOM_MODULE_DRAWS = {
    "random", "randint", "randrange", "choice", "choices", "shuffle",
    "sample", "uniform", "normalvariate", "gauss", "betavariate",
    "expovariate", "gammavariate", "lognormvariate", "vonmisesvariate",
    "paretovariate", "weibullvariate", "triangular", "getrandbits",
    "seed", "randbytes",
}

#: RNG constructors that must receive a seed argument.
_SEEDED_CONSTRUCTORS = {
    ("random", "default_rng"),   # np.random.default_rng
    ("random", "Random"),        # random.Random
    ("random", "SystemRandom"),  # never seedable — caught separately
}


def _dotted(node: ast.AST) -> "tuple[str, ...]":
    """('np', 'random', 'default_rng') for np.random.default_rng."""
    parts: "list[str]" = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
    return tuple(reversed(parts))


def _is_unseeded(call: ast.Call) -> bool:
    if not call.args and not call.keywords:
        return True
    if call.args:
        first = call.args[0]
        return isinstance(first, ast.Constant) and first.value is None
    return all(kw.arg != "seed" or (isinstance(kw.value, ast.Constant)
                                    and kw.value.value is None)
               for kw in call.keywords)


@register
class DeterminismChecker(Checker):
    name = "determinism"
    codes = {
        "CL101": "wall-clock/raw-entropy call (time.time, os.urandom, "
                 "uuid4, datetime.now, secrets) on a src/repro path",
        "CL102": "RNG constructed without a seed "
                 "(default_rng()/random.Random() must be keyed)",
        "CL103": "draw from the hidden module-global RNG state "
                 "(np.random.*/random.* module functions)",
    }
    scope = ("src/repro",)

    def check(self, ctx: FileContext, repo: RepoContext) -> "list[Finding]":
        findings: "list[Finding]" = []

        def emit(node: ast.AST, code: str, message: str) -> None:
            findings.append(Finding(path=ctx.rel_path, line=node.lineno,
                                    col=node.col_offset, code=code,
                                    message=message))

        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            dotted = _dotted(node.func)
            if len(dotted) < 2:
                continue
            head, tail = dotted[0], dotted[-2:]
            callname = ".".join(dotted)
            if head == "secrets":
                emit(node, "CL101",
                     f"'{callname}' is raw OS entropy; decisions must "
                     f"be keyed by explicit seeds")
            elif tail in _FORBIDDEN_CALLS or dotted[-1] == "urandom":
                emit(node, "CL101",
                     f"'{callname}' reads wall-clock/OS entropy; "
                     f"decisions must be keyed by explicit seeds")
            elif dotted[-1] == "SystemRandom":
                emit(node, "CL102",
                     f"'{callname}' can never be seeded; use "
                     f"random.Random(seed) or np.random.default_rng(seed)")
            elif tail in _SEEDED_CONSTRUCTORS or dotted[-1] == "default_rng":
                if _is_unseeded(node):
                    emit(node, "CL102",
                         f"'{callname}()' without a seed draws from OS "
                         f"entropy; pass an explicit seed/key")
            elif (len(dotted) >= 2 and dotted[-2] == "random"
                  and dotted[-1] in _NP_RANDOM_DRAWS):
                emit(node, "CL103",
                     f"'{callname}' uses the hidden global RNG state; "
                     f"draw from an explicitly seeded Generator")
            elif head == "random" and len(dotted) == 2 \
                    and dotted[1] in _RANDOM_MODULE_DRAWS:
                emit(node, "CL103",
                     f"'{callname}' uses the hidden global RNG state; "
                     f"draw from an explicit random.Random(seed)")
        return findings
