"""CL2xx — process-safety: the spawn boundary stays name-and-value only.

The binding contract (DESIGN.md, "Process-safety contract"): shard
workers are ``spawn``-started and self-contained — kernel backends
cross the process boundary **by name only** and are re-resolved inside
the worker, and nothing a spawn-entry module executes at import time
may carry hidden mutable state (the parent's copy would silently
diverge from every worker's).

* ``CL201`` — a module reachable from ``repro/parallel/worker.py``
  through *module-level* imports must not import :mod:`repro.kernels`
  at module level: backend resolution belongs inside worker functions,
  after spawn.
* ``CL202`` — no module-level mutable state (list/dict/set literals or
  constructors bound to non-constant names) in the spawn-entry import
  closure.
* ``CL203`` — no ``KernelBackend``-typed annotation on anything in
  ``repro/parallel`` (task fields, function parameters): the pickled
  task surface carries backend *names* (``str | None``), never backend
  objects.

The closure is computed from the source tree (module-level
``import``/``from`` statements only — function-level imports are the
sanctioned post-spawn escape hatch).
"""

from __future__ import annotations

import ast
import re
from pathlib import Path

from tools.contractlint.core import Checker, FileContext, Finding, RepoContext, register

#: The spawn entry point whose module-level import closure is checked.
SPAWN_ENTRY = "src/repro/parallel/worker.py"

_CONSTANT_NAME = re.compile(r"^(__.*__|_?[A-Z][A-Z0-9_]*)$")

_MUTABLE_CONSTRUCTORS = {"list", "dict", "set", "bytearray", "deque",
                         "defaultdict", "OrderedDict", "Counter"}


def _module_level_repro_imports(tree: ast.Module) -> "list[tuple[str, int]]":
    """Top-level ``repro.*`` imports as (dotted module, lineno)."""
    out: "list[tuple[str, int]]" = []
    for node in tree.body:
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.name == "repro" or alias.name.startswith("repro."):
                    out.append((alias.name, node.lineno))
        elif isinstance(node, ast.ImportFrom) and node.level == 0:
            module = node.module or ""
            if module == "repro" or module.startswith("repro."):
                out.append((module, node.lineno))
    return out


def _module_file(root: Path, dotted: str) -> "Path | None":
    rel = Path("src", *dotted.split("."))
    if (root / rel).with_suffix(".py").is_file():
        return (root / rel).with_suffix(".py")
    if (root / rel / "__init__.py").is_file():
        return root / rel / "__init__.py"
    return None


def spawn_closure(root: Path) -> "set[str]":
    """Repo-relative paths module-level-reachable from the spawn entry."""
    entry = root / SPAWN_ENTRY
    if not entry.is_file():
        return set()
    closure: "set[str]" = set()
    queue = [entry]
    while queue:
        path = queue.pop()
        rel = path.relative_to(root).as_posix()
        if rel in closure:
            continue
        closure.add(rel)
        try:
            tree = ast.parse(path.read_text(encoding="utf-8"))
        except SyntaxError:
            continue
        for dotted, _ in _module_level_repro_imports(tree):
            target = _module_file(root, dotted)
            if target is not None:
                queue.append(target)
    return closure


def _closure(repo: RepoContext) -> "set[str]":
    cached = repo.shared.get("process_safety.closure")
    if cached is None:
        cached = spawn_closure(repo.root)
        repo.shared["process_safety.closure"] = cached
    return cached


def _is_mutable_value(value: ast.AST) -> bool:
    if isinstance(value, (ast.List, ast.Dict, ast.Set,
                          ast.ListComp, ast.DictComp, ast.SetComp)):
        return True
    return (isinstance(value, ast.Call)
            and isinstance(value.func, ast.Name)
            and value.func.id in _MUTABLE_CONSTRUCTORS)


def _annotation_mentions_backend(annotation: "ast.AST | None") -> bool:
    if annotation is None:
        return False
    if isinstance(annotation, ast.Constant) and isinstance(annotation.value, str):
        return "KernelBackend" in annotation.value
    return "KernelBackend" in ast.unparse(annotation)


@register
class ProcessSafetyChecker(Checker):
    name = "process-safety"
    codes = {
        "CL201": "spawn-entry import closure imports repro.kernels at "
                 "module level (backends resolve by name, post-spawn)",
        "CL202": "module-level mutable state in the spawn-entry import "
                 "closure (parent copy would diverge from workers)",
        "CL203": "KernelBackend-typed annotation on the repro.parallel "
                 "pickle surface (backends cross the boundary by name)",
    }
    scope = ("src/repro",)

    def check(self, ctx: FileContext, repo: RepoContext) -> "list[Finding]":
        findings: "list[Finding]" = []
        in_closure = ctx.rel_path in _closure(repo)
        if in_closure:
            for dotted, lineno in _module_level_repro_imports(ctx.tree):
                if dotted == "repro.kernels" or dotted.startswith("repro.kernels."):
                    findings.append(Finding(
                        path=ctx.rel_path, line=lineno, col=0, code="CL201",
                        message=f"module-level import of {dotted!r} inside "
                                f"the spawn-entry closure; resolve backends "
                                f"by name inside worker functions",
                    ))
            for node in ctx.tree.body:
                targets: "list[ast.expr]" = []
                if isinstance(node, ast.Assign):
                    targets, value = node.targets, node.value
                elif isinstance(node, ast.AnnAssign) and node.value is not None:
                    targets, value = [node.target], node.value
                else:
                    continue
                for target in targets:
                    if (isinstance(target, ast.Name)
                            and not _CONSTANT_NAME.match(target.id)
                            and _is_mutable_value(value)):
                        findings.append(Finding(
                            path=ctx.rel_path, line=node.lineno,
                            col=node.col_offset, code="CL202",
                            message=f"module-level mutable binding "
                                    f"{target.id!r} in the spawn-entry "
                                    f"closure; make it a function local, "
                                    f"or an immutable ALL_CAPS constant",
                        ))
        if ctx.rel_path.startswith("src/repro/parallel/"):
            for node in ast.walk(ctx.tree):
                annotation = None
                if isinstance(node, ast.AnnAssign):
                    annotation = node.annotation
                elif isinstance(node, ast.arg):
                    annotation = node.annotation
                if _annotation_mentions_backend(annotation):
                    findings.append(Finding(
                        path=ctx.rel_path, line=node.lineno,
                        col=node.col_offset, code="CL203",
                        message="KernelBackend-typed annotation on the "
                                "process boundary; carry the backend "
                                "*name* (str | None) instead",
                    ))
        return findings
