"""CL5xx — layering: imports point down, never up.

The binding contract (ROADMAP north star: "refactor freely at
production scale"): the package DAG has a declared layer order, and a
lower layer importing a higher one at *module level* couples the CAM
physics to the service veneer and eventually deadlocks the import
graph.  Function-level imports are the sanctioned escape hatch for
genuine cycles (``knobs`` validating an ``engine`` name against the
autotune table) and are deliberately not checked.

* ``CL501`` — a module in layer *n* imports a package in a layer
  above *n* at module level.
* ``CL502`` — a module outside the declared layer map: new top-level
  packages must declare their layer here (one line) before they land.

``arch`` and ``core`` share a rank by design — the accelerator model
wraps the matcher while the pipeline consumes the autotune plans — as
do the sibling leaf stacks (``baselines``/``refstore``,
``eval``/``service``); same-rank imports are legal in both directions.
"""

from __future__ import annotations

import ast

from tools.contractlint.core import Checker, FileContext, Finding, RepoContext, register

#: package (or top-level module) under ``repro`` -> layer rank.
#: Lower ranks must not module-level-import higher ranks.
LAYERS: "dict[str, int]" = {
    "errors": 0,
    "constants": 0,
    "genome": 1,
    "cost": 1,
    "faults": 1,
    "distance": 2,
    "kernels": 3,
    "knobs": 4,
    "cam": 5,
    "parallel": 6,
    "arch": 7,
    "core": 7,
    "baselines": 8,
    "refstore": 8,
    "eval": 9,
    "service": 9,
    "experiments": 10,
}


def _module_layer_key(rel_path: str) -> "str | None":
    """'src/repro/cam/array.py' -> 'cam'; 'src/repro/knobs.py' -> 'knobs'."""
    parts = rel_path.split("/")
    if parts[:2] != ["src", "repro"] or len(parts) < 3:
        return None
    head = parts[2]
    if head == "__init__.py":
        return None  # the package facade re-exports everything, by design
    return head[:-3] if head.endswith(".py") else head


@register
class LayeringChecker(Checker):
    name = "layering"
    codes = {
        "CL501": "module-level import of a higher layer (imports must "
                 "point down; function-level imports are the escape "
                 "hatch for cycles)",
        "CL502": "module outside the declared layer map (declare the "
                 "new package's layer in tools/contractlint)",
    }
    scope = ("src/repro",)

    def check(self, ctx: FileContext, repo: RepoContext) -> "list[Finding]":
        key = _module_layer_key(ctx.rel_path)
        if key is None:
            return []
        findings: "list[Finding]" = []
        rank = LAYERS.get(key)
        if rank is None:
            return [Finding(
                path=ctx.rel_path, line=1, col=0, code="CL502",
                message=f"package {key!r} has no declared layer; add it "
                        f"to tools/contractlint/checkers/layering.py",
            )]
        for node in ctx.tree.body:
            modules: "list[tuple[str, int]]" = []
            if isinstance(node, ast.Import):
                modules = [(alias.name, node.lineno)
                           for alias in node.names]
            elif isinstance(node, ast.ImportFrom) and node.level == 0:
                modules = [(node.module or "", node.lineno)]
            for dotted, lineno in modules:
                parts = dotted.split(".")
                if parts[0] != "repro" or len(parts) < 2:
                    continue
                target = parts[1]
                target_rank = LAYERS.get(target)
                if target_rank is None:
                    continue  # the imported side reports its own CL502
                if target_rank > rank:
                    findings.append(Finding(
                        path=ctx.rel_path, line=lineno, col=0,
                        code="CL501",
                        message=f"'repro.{key}' (layer {rank}) imports "
                                f"'repro.{target}' (layer {target_rank}) "
                                f"at module level; imports must point "
                                f"down (move it into the function that "
                                f"needs it)",
                    ))
        return findings
