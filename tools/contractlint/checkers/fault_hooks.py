"""CL6xx — fault-hook consistency: every fire() names a real point.

The binding contract (DESIGN.md, "Fault model"): the nine injection
hook points are *registered* in ``repro/faults/plan.py`` —
``HOOK_POINTS`` is the single source of truth the arming path
validates against at runtime.  But a production ``fire("typo")`` only
fails when a chaos plan happens to arm, and a registered point nobody
fires is a hole in the chaos surface that no runtime check can see.
Both are statically decidable; the point names are read from the
*source* of plan.py, never imported.

* ``CL601`` — a ``fire(...)``/``_fire_fault(...)`` call whose literal
  point name is not registered in ``HOOK_POINTS``.
* ``CL602`` — a fire call whose point argument is not a string
  literal: hook names must be statically checkable (the whole point
  of this pass).
* ``CL603`` — a registered hook point with no fire site anywhere in
  the tree (dead registration; repo-wide, so it only runs on a full
  scan).
* ``CL604`` — a hook-point string in a scenario ``reachable_points``
  tuple or a ``FaultSpec(points=...)`` literal that is not registered.
"""

from __future__ import annotations

import ast

from tools.contractlint.core import Checker, FileContext, Finding, RepoContext, register

#: Names a production fire call goes by (`fire` itself, and the
#: conventional aliased import `from repro.faults.hooks import fire as
#: _fire_fault`).
_FIRE_NAMES = {"fire", "_fire_fault"}

#: The framework package itself (defines fire(); its docstrings and
#: plan tables are not call sites to police).
_FRAMEWORK_PREFIX = "src/repro/faults/"


def _fire_call_name(node: ast.Call) -> "str | None":
    if isinstance(node.func, ast.Name) and node.func.id in _FIRE_NAMES:
        return node.func.id
    if isinstance(node.func, ast.Attribute) and node.func.attr == "fire":
        return node.func.attr
    return None


@register
class FaultHookChecker(Checker):
    name = "fault-hooks"
    codes = {
        "CL601": "fire() names an unregistered hook point (register it "
                 "in repro/faults/plan.py HOOK_POINTS first)",
        "CL602": "fire() point argument is not a string literal (hook "
                 "names must be statically checkable)",
        "CL603": "registered hook point is never fired anywhere "
                 "(dead registration widens the chaos surface on paper "
                 "only)",
        "CL604": "reachable_points/FaultSpec points entry is not a "
                 "registered hook point",
    }
    scope = ("src/repro", "tools", "benchmarks")

    def check(self, ctx: FileContext, repo: RepoContext) -> "list[Finding]":
        findings: "list[Finding]" = []
        fired: "set[str]" = repo.shared.setdefault(
            "fault_hooks.fired", set())  # type: ignore[assignment]
        points = repo.hook_points
        in_framework = ctx.rel_path.startswith(_FRAMEWORK_PREFIX)

        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.FunctionDef) \
                    and node.name == "reachable_points" and points:
                findings.extend(self._check_point_tuples(
                    ctx, node, points, "reachable_points"))
                continue
            if not isinstance(node, ast.Call):
                continue
            if (isinstance(node.func, ast.Name)
                    and node.func.id == "FaultSpec" and points):
                for kw in node.keywords:
                    if kw.arg == "points" and isinstance(kw.value, ast.Tuple):
                        findings.extend(self._check_tuple(
                            ctx, kw.value, points, "FaultSpec points"))
                continue
            if in_framework or _fire_call_name(node) is None \
                    or not node.args:
                continue
            first = node.args[0]
            if not (isinstance(first, ast.Constant)
                    and isinstance(first.value, str)):
                findings.append(Finding(
                    path=ctx.rel_path, line=node.lineno,
                    col=node.col_offset, code="CL602",
                    message="fire() with a computed point name cannot "
                            "be checked statically; pass the "
                            "registered literal",
                ))
                continue
            fired.add(first.value)
            if points and first.value not in points:
                findings.append(Finding(
                    path=ctx.rel_path, line=node.lineno,
                    col=node.col_offset, code="CL601",
                    message=f"fire({first.value!r}) names an "
                            f"unregistered hook point; known: "
                            f"{list(points)}",
                ))
        return findings

    def _check_point_tuples(self, ctx: FileContext, func: ast.FunctionDef,
                            points: "tuple[str, ...]",
                            where: str) -> "list[Finding]":
        findings: "list[Finding]" = []
        for node in ast.walk(func):
            value = None
            if isinstance(node, (ast.Assign, ast.AugAssign, ast.Return)):
                value = node.value
            if isinstance(value, ast.Tuple):
                findings.extend(self._check_tuple(ctx, value, points, where))
        return findings

    def _check_tuple(self, ctx: FileContext, tup: ast.Tuple,
                     points: "tuple[str, ...]",
                     where: str) -> "list[Finding]":
        findings: "list[Finding]" = []
        for elt in tup.elts:
            if (isinstance(elt, ast.Constant) and isinstance(elt.value, str)
                    and elt.value not in points):
                findings.append(Finding(
                    path=ctx.rel_path, line=elt.lineno,
                    col=elt.col_offset, code="CL604",
                    message=f"{where} entry {elt.value!r} is not a "
                            f"registered hook point; known: "
                            f"{list(points)}",
                ))
        return findings

    def finalize(self, repo: RepoContext) -> "list[Finding]":
        fired = repo.shared.get("fault_hooks.fired", set())
        findings: "list[Finding]" = []
        for point in repo.hook_points:
            if point not in fired:
                findings.append(Finding(
                    path="src/repro/faults/plan.py", line=1, col=0,
                    code="CL603",
                    message=f"hook point {point!r} is registered but "
                            f"never fired by any production module",
                ))
        return findings
