"""CL3xx — knob hygiene: ``None`` means autotune, falsy means *bug*.

The binding contract (``repro/knobs.py``): the cross-layer constructor
knobs (``micro_batch``, ``compaction``, ``max_workers``, ``backend``,
``engine``, plus the ``shard_engine`` alias) treat ``None`` as
"autotune/disable" and validate every explicit value through
``validate_service_knobs``.  The one bug class this permits is
*falsy-swallowing*: ``max_workers or plan.max_workers`` silently turns
the invalid explicit value ``0`` into an autotune request instead of
the loud ``CamConfigError`` the contract promises — the exact bug PR 5
shipped and later reverted.  The knob name list is read from the
parameter list of ``validate_service_knobs`` itself, so adding a knob
to the gate automatically extends the lint.

* ``CL301`` — ``<knob> or <default>`` (or the ternary spelling
  ``<knob> if <knob> else <default>``): distinguishes ``None`` from
  falsy explicit values by accident, never on purpose.  Use
  ``x if x is not None else default``.
* ``CL302`` — truthiness test of a knob (``if not backend:``,
  ``while micro_batch:``): same falsy/None conflation one branch
  earlier.  Test ``is None`` / ``is not None`` explicitly.
* ``CL303`` — a knob-named parameter with a *falsy* non-``None``
  default (``backend=""``, ``max_workers=0``): indistinguishable from
  "unset" to any downstream truthiness check, and invalid per the
  validation gate anyway.
"""

from __future__ import annotations

import ast

from tools.contractlint.core import Checker, FileContext, Finding, RepoContext, register


def _knob_name(node: ast.AST, knobs: "tuple[str, ...]") -> "str | None":
    if isinstance(node, ast.Name) and node.id in knobs:
        return node.id
    if isinstance(node, ast.Attribute):
        # self.micro_batch / config._max_workers style attributes.
        attr = node.attr.lstrip("_")
        if attr in knobs:
            return node.attr
    return None


def _is_falsy_constant(node: ast.AST) -> bool:
    return (isinstance(node, ast.Constant)
            and node.value is not None
            and not node.value)


@register
class KnobChecker(Checker):
    name = "knobs"
    codes = {
        "CL301": "falsy-'or' on a service knob (swallows explicit 0/'' "
                 "instead of raising; use 'is None' — the PR 5 bug class)",
        "CL302": "truthiness test of a service knob (None and falsy "
                 "explicit values must not be conflated; test 'is None')",
        "CL303": "knob-named parameter with a falsy non-None default "
                 "(unset must be spelled None so validation engages)",
    }
    scope = ("src/repro", "benchmarks", "tools", "examples")

    def check(self, ctx: FileContext, repo: RepoContext) -> "list[Finding]":
        knobs = repo.knob_names
        findings: "list[Finding]" = []

        def emit(node: ast.AST, code: str, message: str) -> None:
            findings.append(Finding(path=ctx.rel_path, line=node.lineno,
                                    col=node.col_offset, code=code,
                                    message=message))

        def check_condition(test: ast.AST) -> None:
            operands = (test.values if isinstance(test, ast.BoolOp)
                        else [test])
            for operand in operands:
                if isinstance(operand, ast.UnaryOp) \
                        and isinstance(operand.op, ast.Not):
                    operand = operand.operand
                name = _knob_name(operand, knobs)
                if name is not None:
                    emit(operand, "CL302",
                         f"truthiness test of knob {name!r} conflates "
                         f"None with falsy explicit values; compare "
                         f"'is None' explicitly")

        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.BoolOp) and isinstance(node.op, ast.Or):
                for operand in node.values[:-1]:
                    name = _knob_name(operand, knobs)
                    if name is not None:
                        emit(node, "CL301",
                             f"'{name} or ...' silently swallows falsy "
                             f"explicit values (the PR 5 max_workers=0 "
                             f"bug); use '{name} if {name} is not None "
                             f"else ...'")
            elif isinstance(node, ast.IfExp):
                name = _knob_name(node.test, knobs)
                if name is not None:
                    emit(node, "CL301",
                         f"'... if {name} else ...' swallows falsy "
                         f"explicit values; test '{name} is not None'")
            elif isinstance(node, (ast.If, ast.While)):
                check_condition(node.test)
            elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                                   ast.Lambda)):
                args = node.args
                positional = args.posonlyargs + args.args
                defaults = args.defaults
                for arg, default in zip(positional[len(positional)
                                                   - len(defaults):],
                                        defaults, strict=True):
                    if arg.arg in knobs and _is_falsy_constant(default):
                        emit(default, "CL303",
                             f"knob parameter {arg.arg!r} defaults to a "
                             f"falsy value; spell 'unset' as None")
                for arg, default in zip(args.kwonlyargs, args.kw_defaults,
                                        strict=True):
                    if (default is not None and arg.arg in knobs
                            and _is_falsy_constant(default)):
                        emit(default, "CL303",
                             f"knob parameter {arg.arg!r} defaults to a "
                             f"falsy value; spell 'unset' as None")
        return findings
