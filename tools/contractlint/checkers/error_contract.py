"""CL4xx — error contract: production paths fail loud *and typed*.

The binding contract (``repro/errors.py``): everything ``src/repro``
raises derives from :class:`repro.errors.ReproError`, so callers
distinguish configuration problems from data problems with one
``except`` clause and the fault-injection checker can judge surfaced
errors against a documented typed surface.  Bare builtins punch holes
in both.

* ``CL401`` — ``raise`` of a builtin exception constructor
  (``ValueError``, ``RuntimeError``, ``KeyError``, ...) on a
  ``src/repro`` path.  ``NotImplementedError`` is exempt (the
  abstract-method convention), as is re-raising (``raise`` /
  ``raise exc``) and raising names the module defined or imported from
  :mod:`repro.errors`.
* ``CL402`` — ``assert`` on a production path: stripped under
  ``python -O``, so the guard silently vanishes exactly when someone
  optimises.  Restructure so the invariant holds by construction, or
  raise a typed error.
"""

from __future__ import annotations

import ast

from tools.contractlint.core import Checker, FileContext, Finding, RepoContext, register

#: Builtin exceptions whose *construction* in a raise is a violation.
_BUILTIN_EXCEPTIONS = {
    "ArithmeticError", "AssertionError", "AttributeError", "BaseException",
    "BufferError", "BytesWarning", "EOFError", "EnvironmentError",
    "Exception", "FloatingPointError", "IOError", "ImportError",
    "IndexError", "KeyError", "LookupError", "MemoryError", "NameError",
    "OSError", "OverflowError", "RecursionError", "ReferenceError",
    "RuntimeError", "StopAsyncIteration", "StopIteration", "SyntaxError",
    "SystemError", "TypeError", "UnboundLocalError", "UnicodeDecodeError",
    "UnicodeEncodeError", "UnicodeError", "ValueError", "ZeroDivisionError",
}


@register
class ErrorContractChecker(Checker):
    name = "error-contract"
    codes = {
        "CL401": "raise of a builtin exception on a src/repro path "
                 "(only the typed repro.errors hierarchy fails loud "
                 "AND catchable)",
        "CL402": "assert on a production path (vanishes under -O); "
                 "raise a typed repro.errors error instead",
    }
    scope = ("src/repro",)

    def check(self, ctx: FileContext, repo: RepoContext) -> "list[Finding]":
        findings: "list[Finding]" = []
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Assert):
                findings.append(Finding(
                    path=ctx.rel_path, line=node.lineno,
                    col=node.col_offset, code="CL402",
                    message="assert vanishes under 'python -O'; "
                            "restructure or raise a typed repro.errors "
                            "error",
                ))
            elif isinstance(node, ast.Raise) and node.exc is not None:
                exc = node.exc
                name = None
                if isinstance(exc, ast.Call) and isinstance(exc.func, ast.Name):
                    name = exc.func.id
                elif isinstance(exc, ast.Name):
                    # `raise ValueError` without a call still raises it.
                    name = exc.id if exc.id in _BUILTIN_EXCEPTIONS else None
                if name in _BUILTIN_EXCEPTIONS:
                    findings.append(Finding(
                        path=ctx.rel_path, line=node.lineno,
                        col=node.col_offset, code="CL401",
                        message=f"raise {name} on a production path; use "
                                f"the typed repro.errors hierarchy "
                                f"(CamConfigError, ServiceError, ...)",
                    ))
        return findings
