"""Checker modules; importing this package registers all of them."""

from tools.contractlint.checkers import (  # noqa: F401  (registration imports)
    determinism,
    error_contract,
    fault_hooks,
    knobs,
    layering,
    process_safety,
)
