"""Command-line entry point: ``python -m tools.contractlint``.

Exit codes: 0 clean, 1 findings, 2 usage/configuration error.  The
``--json`` document follows the repo's bench-JSON shape
(``{"bench", "config", "timings", "derived"}`` — see
``benchmarks/conftest.py``) with the findings appended, so the CI
artifact folds into the same tooling that trends the benchmarks.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

from tools.contractlint.core import all_codes, run_lint


def _default_root() -> Path:
    # tools/contractlint/cli.py -> the repo root two levels up.
    return Path(__file__).resolve().parents[2]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m tools.contractlint",
        description="Statically enforce the repo's determinism, "
                    "process-safety, knob, error, layering and "
                    "fault-hook contracts.",
    )
    parser.add_argument(
        "files", nargs="*", type=Path,
        help="restrict the scan to these files (default: the whole "
             "tree; repo-wide checks only run on full scans)",
    )
    parser.add_argument(
        "--root", type=Path, default=None,
        help="repo root (default: inferred from this file's location)",
    )
    parser.add_argument(
        "--json", metavar="PATH", default=None,
        help="write a machine-readable {bench, config, timings, "
             "derived, findings} document to PATH",
    )
    parser.add_argument(
        "--list-codes", action="store_true",
        help="print every stable error code and the contract it "
             "guards, then exit",
    )
    return parser


def main(argv: "list[str] | None" = None) -> int:
    args = build_parser().parse_args(argv)
    if args.list_codes:
        for code, contract in sorted(all_codes().items()):
            print(f"{code}  {contract}")
        return 0
    root = (args.root or _default_root()).resolve()
    if not (root / "pyproject.toml").is_file():
        print(f"contractlint: {root} does not look like the repo root "
              f"(no pyproject.toml)", file=sys.stderr)
        return 2
    files = [path for path in args.files] or None
    if files is not None:
        for path in files:
            if not path.is_file():
                print(f"contractlint: no such file: {path}",
                      file=sys.stderr)
                return 2
    started = time.perf_counter()
    findings = run_lint(root, files=files)
    elapsed = time.perf_counter() - started
    for finding in findings:
        print(finding.render())
    n_files = len(files) if files is not None else None
    summary = (f"contractlint: {len(findings)} finding"
               f"{'' if len(findings) == 1 else 's'} "
               f"({elapsed:.2f}s)")
    print(summary)
    if args.json is not None:
        document = {
            "bench": "contractlint",
            "config": {
                "root": str(root),
                "files": ([str(p) for p in files]
                          if files is not None else "all"),
                "codes": sorted(all_codes()),
            },
            "timings": {"lint_seconds": elapsed},
            "derived": {
                "n_findings": len(findings),
                "n_files_restricted": n_files,
                "clean": not findings,
            },
            "findings": [finding.describe() for finding in findings],
        }
        with open(args.json, "w", encoding="utf-8") as handle:
            json.dump(document, handle, indent=2, sort_keys=True)
            handle.write("\n")
    return 1 if findings else 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
