"""``python -m tools.contractlint`` dispatch."""

import sys

from tools.contractlint.cli import main

try:
    sys.exit(main())
except BrokenPipeError:
    # The reader went away (e.g. `--list-codes | head`); exit quietly
    # like any well-behaved filter instead of dumping a traceback.
    sys.stderr.close()
    sys.exit(0)
