"""Contract linter: static enforcement of the repo's binding contracts.

The reproduction's value proposition is a set of *contracts* — bit-
identical decisions under keyed noise for any scheduling/backend/
engine/process count, kernel backends crossing process boundaries by
name only, validated service knobs, a typed fail-loud error hierarchy,
registered fault-hook points, and a downward-only import layering.
Every one of them used to be enforced only by runtime tests and
reviewer vigilance, and at least one real bug (a falsy ``or`` that
silently swallowed ``max_workers=0``) slipped through exactly that
gap.  This package checks the contracts *statically*, over the ``ast``
of the source tree, before any test runs.

Usage::

    python -m tools.contractlint              # lint the repo, exit 1 on findings
    python -m tools.contractlint --json out.json
    python -m tools.contractlint --list-codes

Architecture (see DESIGN.md, "Static contract enforcement"):

* :mod:`tools.contractlint.core` — the engine: file walking, per-line
  suppression comments (``# contractlint: disable=CLxxx -- reason``),
  config/allowlists from ``pyproject.toml``, and the checker registry.
* :mod:`tools.contractlint.checkers` — one module per contract family,
  each registering a :class:`~tools.contractlint.core.Checker` with
  stable ``CLxxx`` error codes: ``CL1xx`` determinism, ``CL2xx``
  process-safety, ``CL3xx`` knob hygiene, ``CL4xx`` error contract,
  ``CL5xx`` layering, ``CL6xx`` fault-hook consistency (``CL0xx`` are
  the tool's own meta codes).

The package is intentionally pure-stdlib and never imports
:mod:`repro`: repo facts it needs (knob names, hook-point names) are
read from the *source* of ``src/repro/knobs.py`` and
``src/repro/faults/plan.py``, so the linter runs on a tree that is too
broken to import.
"""

from tools.contractlint.core import (
    Checker,
    FileContext,
    Finding,
    LintConfig,
    RepoContext,
    all_codes,
    lint_source,
    registered_checkers,
    run_lint,
)

__all__ = [
    "Checker",
    "FileContext",
    "Finding",
    "LintConfig",
    "RepoContext",
    "all_codes",
    "lint_source",
    "registered_checkers",
    "run_lint",
]
