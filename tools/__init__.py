"""Repo tooling namespace (``python -m tools.contractlint``)."""
