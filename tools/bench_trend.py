#!/usr/bin/env python
"""Aggregate benchmark ``--json`` documents into a perf trajectory.

Every ``benchmarks/bench_*.py`` script emits one machine-readable
``{"bench", "config", "timings", "derived"}`` document via ``--json``
(see ``benchmarks/conftest.py``); CI archives them as the
``bench-json`` artifact.  This tool is the consumer: it folds a set of
those documents into one append-only ``BENCH_TRAJECTORY.json`` and
prints the per-bench timing deltas against the previous recorded run,
so a perf regression shows up as a number in the PR log instead of a
feeling.

The trajectory file maps each bench name to its run history::

    {"version": 1,
     "benches": {"bench_refstore_warmstart": [
         {"label": "run-1", "config": {...},
          "timings": {"cold_boot_s": 0.134, ...},
          "derived": {"speedup": 13.7, ...}},
         ...]}}

Runs are comparable only at equal config, so a run whose config
differs from the previous entry is recorded but its deltas are marked
``(config changed)`` rather than compared.

Usage::

    python tools/bench_trend.py out/*.json                # append + deltas
    python tools/bench_trend.py out/*.json --label v1.2   # tagged run
    python tools/bench_trend.py --show                    # history only
    python tools/bench_trend.py out/*.json --dry-run      # deltas, no write

CI smoke: run any bench with ``--smoke --json doc.json``, then
``python tools/bench_trend.py doc.json --trajectory t.json`` twice —
the second invocation must print a delta line per timing.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

TRAJECTORY_VERSION = 1
REQUIRED_KEYS = ("bench", "config", "timings", "derived")


def load_document(path: Path) -> dict:
    """One bench ``--json`` document, validated against the contract."""
    try:
        document = json.loads(path.read_text(encoding="utf-8"))
    except (OSError, json.JSONDecodeError) as exc:
        raise SystemExit(
            f"FAIL: cannot read bench JSON {path}: {exc}") from exc
    missing = [key for key in REQUIRED_KEYS if key not in document]
    if missing:
        raise SystemExit(
            f"FAIL: {path} is not a bench document (missing "
            f"{', '.join(missing)}; expected the conftest "
            f"write_bench_json contract)"
        )
    return document


def load_trajectory(path: Path) -> dict:
    if not path.exists():
        return {"version": TRAJECTORY_VERSION, "benches": {}}
    try:
        trajectory = json.loads(path.read_text(encoding="utf-8"))
    except (OSError, json.JSONDecodeError) as exc:
        raise SystemExit(
            f"FAIL: cannot read trajectory {path}: {exc}") from exc
    if trajectory.get("version") != TRAJECTORY_VERSION:
        raise SystemExit(
            f"FAIL: trajectory {path} has version "
            f"{trajectory.get('version')!r}; this tool writes version "
            f"{TRAJECTORY_VERSION}"
        )
    return trajectory


def next_label(trajectory: dict) -> str:
    """``run-N`` where N counts the longest recorded history."""
    longest = max((len(history) for history
                   in trajectory["benches"].values()), default=0)
    return f"run-{longest + 1}"


def format_delta(name: str, previous: float, current: float) -> str:
    if previous == 0:
        return f"    {name:<24} {previous:>10.4f} -> {current:>10.4f}"
    change = (current - previous) / previous * 100.0
    arrow = "+" if change >= 0 else ""
    return (f"    {name:<24} {previous:>10.4f} -> {current:>10.4f}  "
            f"({arrow}{change:.1f}%)")


def report_bench(bench: str, history: "list[dict]") -> None:
    current = history[-1]
    print(f"{bench} [{current['label']}]")
    if len(history) == 1:
        for name, value in sorted(current["timings"].items()):
            print(f"    {name:<24} {value:>10.4f}  (first recorded run)")
        return
    previous = history[-2]
    if previous["config"] != current["config"]:
        print(f"    (config changed since {previous['label']}; "
              f"deltas skipped)")
        for name, value in sorted(current["timings"].items()):
            print(f"    {name:<24} {value:>10.4f}")
        return
    for name, value in sorted(current["timings"].items()):
        if name in previous["timings"]:
            print(format_delta(name, previous["timings"][name], value))
        else:
            print(f"    {name:<24} {value:>10.4f}  (new timing)")


def show_history(trajectory: dict) -> int:
    if not trajectory["benches"]:
        print("trajectory is empty (no runs recorded yet)")
        return 0
    for bench, history in sorted(trajectory["benches"].items()):
        labels = ", ".join(entry["label"] for entry in history)
        print(f"{bench}: {len(history)} run(s) [{labels}]")
        report_bench(bench, history)
    return 0


def main(argv: "list[str] | None" = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("documents", nargs="*", type=Path,
                        help="bench --json documents to fold in")
    parser.add_argument("--trajectory", type=Path,
                        default=Path("BENCH_TRAJECTORY.json"),
                        help="trajectory file to append to "
                             "(default: %(default)s)")
    parser.add_argument("--label", default=None,
                        help="label for this run (default: run-N)")
    parser.add_argument("--show", action="store_true",
                        help="print the recorded history and exit")
    parser.add_argument("--dry-run", action="store_true",
                        help="print deltas without writing the "
                             "trajectory")
    args = parser.parse_args(argv)

    trajectory = load_trajectory(args.trajectory)
    if args.show:
        return show_history(trajectory)
    if not args.documents:
        parser.error("no bench documents given (or use --show)")

    label = args.label or next_label(trajectory)
    folded = []
    for path in args.documents:
        document = load_document(path)
        bench = document["bench"]
        history = trajectory["benches"].setdefault(bench, [])
        history.append({
            "label": label,
            "config": document["config"],
            "timings": document["timings"],
            "derived": document["derived"],
        })
        folded.append(bench)
        report_bench(bench, history)

    if not args.dry_run:
        args.trajectory.write_text(
            json.dumps(trajectory, indent=2, sort_keys=True) + "\n",
            encoding="utf-8",
        )
        print(f"recorded {len(folded)} bench(es) as {label!r} in "
              f"{args.trajectory}")
    else:
        print(f"dry run: {len(folded)} bench(es) compared, "
              f"{args.trajectory} not written")
    return 0


if __name__ == "__main__":
    sys.exit(main())
