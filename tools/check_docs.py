#!/usr/bin/env python
"""Docs smoke check: the README front door can never rot.

Three guarantees, enforced by CI's ``docs-smoke`` job:

1. **The README quickstart runs.**  Every fenced ``python`` block in
   README.md is executed, in order, in one shared namespace (so later
   blocks use earlier blocks' variables, exactly as a reader would).
2. **README and example share one code path.**  A block preceded by a
   ``<!-- quickstart:<name> -->`` tag must be byte-identical (after
   dedent) to the ``# [readme:<name>]`` … ``# [/readme:<name>]``
   section of ``examples/quickstart.py`` — and every marked section of
   the example must appear in the README.  Edit either side without
   the other and this script fails with a diff.
3. **The example itself still passes.**  ``examples/quickstart.py`` is
   imported and its ``main()`` executed (it self-checks internally).

Run from the repository root::

    PYTHONPATH=src python tools/check_docs.py
"""

from __future__ import annotations

import difflib
import re
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
README = REPO_ROOT / "README.md"
QUICKSTART = REPO_ROOT / "examples" / "quickstart.py"

_TAG_RE = re.compile(r"<!--\s*quickstart:([\w-]+)\s*-->")
_FENCE_RE = re.compile(
    r"(?:<!--\s*quickstart:([\w-]+)\s*-->\s*\n)?```python\n(.*?)```",
    re.DOTALL,
)


def extract_readme_blocks(text: str) -> "list[tuple[str | None, str]]":
    """``(tag, code)`` for every fenced python block, in order."""
    return [(match.group(1), match.group(2))
            for match in _FENCE_RE.finditer(text)]


def extract_example_sections(text: str) -> "dict[str, str]":
    """The dedented ``# [readme:<name>]`` sections of the example."""
    sections: dict[str, str] = {}
    for match in re.finditer(
            r"^([ \t]*)# \[readme:([\w-]+)\]\n(.*?)^[ \t]*# \[/readme:\2\]",
            text, re.DOTALL | re.MULTILINE):
        indent, name, body = match.groups()
        lines = []
        for line in body.splitlines():
            if line.strip():
                if not line.startswith(indent):
                    raise SystemExit(
                        f"quickstart section {name!r}: line {line!r} is "
                        f"shallower than its section marker"
                    )
                lines.append(line[len(indent):])
            else:
                lines.append("")
        sections[name] = "\n".join(lines).rstrip() + "\n"
    return sections


def check_sync(blocks, sections) -> "list[str]":
    """Diff README-tagged blocks against the example's sections."""
    errors: list[str] = []
    tagged = {tag: code for tag, code in blocks if tag is not None}
    for name in sections:
        if name not in tagged:
            errors.append(
                f"example section [readme:{name}] has no tagged README "
                f"block (<!-- quickstart:{name} -->)"
            )
    for name, code in tagged.items():
        if name not in sections:
            errors.append(
                f"README block tagged quickstart:{name} has no "
                f"[readme:{name}] section in {QUICKSTART.name}"
            )
            continue
        want = sections[name].rstrip() + "\n"
        got = code.rstrip() + "\n"
        if want != got:
            diff = "\n".join(difflib.unified_diff(
                want.splitlines(), got.splitlines(),
                fromfile=f"examples/quickstart.py [readme:{name}]",
                tofile=f"README.md quickstart:{name}", lineterm="",
            ))
            errors.append(
                f"README block quickstart:{name} drifted from the "
                f"example:\n{diff}"
            )
    return errors


def run_blocks(blocks) -> None:
    """Execute every README python block in one shared namespace."""
    namespace: dict = {"__name__": "__readme__"}
    for position, (tag, code) in enumerate(blocks):
        label = tag or f"block {position}"
        print(f"-- executing README python {label}")
        try:
            exec(compile(code, f"README.md:{label}", "exec"), namespace)
        except Exception as error:
            raise SystemExit(
                f"README quickstart block {label!r} failed: {error!r}"
            ) from error


def run_example() -> None:
    """Import the example (the shared code path) and run its main()."""
    sys.path.insert(0, str(REPO_ROOT / "examples"))
    try:
        import quickstart
    finally:
        sys.path.pop(0)
    print("-- executing examples/quickstart.py main()")
    quickstart.main()


def main() -> int:
    blocks = extract_readme_blocks(README.read_text())
    if not blocks:
        print("FAIL: README.md has no fenced python blocks",
              file=sys.stderr)
        return 1
    sections = extract_example_sections(QUICKSTART.read_text())
    if not sections:
        print("FAIL: examples/quickstart.py has no [readme:*] sections",
              file=sys.stderr)
        return 1
    errors = check_sync(blocks, sections)
    if errors:
        for error in errors:
            print(f"FAIL: {error}", file=sys.stderr)
        return 1
    run_blocks(blocks)
    run_example()
    print(f"OK: {len(blocks)} README blocks executed, "
          f"{len(sections)} in sync with examples/quickstart.py")
    return 0


if __name__ == "__main__":
    sys.exit(main())
