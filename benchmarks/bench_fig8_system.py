"""Bench: regenerate Fig. 8 (system-level speedup and energy bars).

Checks ordering and that every measured ratio sits within 3x of the
paper's reported anchor.
"""

from __future__ import annotations

from repro import constants
from repro.experiments.fig8 import SYSTEMS, compute_fig8


def bench_fig8(benchmark):
    result = benchmark(compute_fig8)
    latencies = [result.costs[name].latency_ns for name in SYSTEMS[:5]]
    assert all(a > b for a, b in zip(latencies, latencies[1:]))
    for name, key in (("CM-CPU", "cm_cpu"), ("ReSMA", "resma"),
                      ("SaVI", "savi"), ("EDAM", "edam")):
        measured = result.speedup_over(name, "ASMCap w/o H&T")
        anchor = constants.FIG8_SPEEDUP_NO_STRATEGY[key]
        assert anchor / 3 <= measured <= anchor * 3
        measured_e = result.energy_efficiency_over(name, "ASMCap w/o H&T")
        anchor_e = constants.FIG8_ENERGY_EFF_NO_STRATEGY[key]
        assert anchor_e / 3 <= measured_e <= anchor_e * 3
    print()
    print(result.render())
