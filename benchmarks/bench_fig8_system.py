"""Bench: regenerate Fig. 8 (system-level speedup and energy bars).

Two entry points:

* ``pytest benchmarks/bench_fig8_system.py --benchmark-only`` — the
  pytest-benchmark harness (``bench_fig8``);
* ``python benchmarks/bench_fig8_system.py [--smoke]`` — a standalone
  driver for CI's bench-smoke job and the nightly lane: times the
  measured-profile and analytic paths, checks ordering and that every
  measured ratio sits within 3x of the paper's reported anchor, and
  asserts the ledger-measured strategy statistics equal the analytic
  cross-check.

Usage::

    python benchmarks/bench_fig8_system.py            # timed repeats
    python benchmarks/bench_fig8_system.py --smoke    # single CI pass
"""

from __future__ import annotations

import argparse
import sys
import time

from conftest import add_json_argument, write_bench_json
from repro import constants
from repro.experiments.fig8 import SYSTEMS, compute_fig8


def check_result(result) -> None:
    """Ordering + paper-anchor assertions shared by both entry points."""
    latencies = [result.costs[name].latency_ns for name in SYSTEMS[:5]]
    assert all(a > b for a, b in zip(latencies, latencies[1:], strict=False))
    for name, key in (("CM-CPU", "cm_cpu"), ("ReSMA", "resma"),
                      ("SaVI", "savi"), ("EDAM", "edam")):
        measured = result.speedup_over(name, "ASMCap w/o H&T")
        anchor = constants.FIG8_SPEEDUP_NO_STRATEGY[key]
        assert anchor / 3 <= measured <= anchor * 3
        measured_e = result.energy_efficiency_over(name, "ASMCap w/o H&T")
        anchor_e = constants.FIG8_ENERGY_EFF_NO_STRATEGY[key]
        assert anchor_e / 3 <= measured_e <= anchor_e * 3


def check_measured_profiles(result) -> None:
    """The ledger-measured statistics must equal the analytic profile."""
    for condition, profile in result.profiles.items():
        analytic = result.analytic_profiles[condition]
        assert abs(profile.searches_per_read
                   - analytic.searches_per_read) < 1e-12, condition
        assert abs(profile.rotation_cycles_per_read
                   - analytic.rotation_cycles_per_read) < 1e-12, condition


def bench_fig8(benchmark):
    result = benchmark(compute_fig8)
    check_result(result)
    check_measured_profiles(result)
    print()
    print(result.render())


def timed(fn, repeats: int):
    best = float("inf")
    result = None
    for _ in range(max(1, repeats)):
        start = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - start)
    return best, result


def main(argv: "list[str] | None" = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true",
                        help="single pass per path (CI hot-path check)")
    parser.add_argument("--repeats", type=int, default=3,
                        help="timed repetitions per path (best taken)")
    add_json_argument(parser)
    args = parser.parse_args(argv)
    repeats = 1 if args.smoke else args.repeats

    measured_s, measured = timed(
        lambda: compute_fig8(measured=True), repeats
    )
    analytic_s, analytic = timed(
        lambda: compute_fig8(measured=False), repeats
    )

    check_result(measured)
    check_result(analytic)
    check_measured_profiles(measured)

    print("\nbench_fig8_system: Fig. 8 regeneration "
          f"({'smoke' if args.smoke else f'best of {repeats}'})")
    print(f"{'path':<28} {'seconds':>9}")
    print(f"{'measured (match_sweep x2)':<28} {measured_s:>9.3f}")
    print(f"{'analytic (policies only)':<28} {analytic_s:>9.3f}")
    print()
    print(measured.render())
    print("\nOK: ordering, paper anchors (within 3x), and "
          "measured == analytic strategy statistics")
    write_bench_json(
        args.json, bench="bench_fig8_system",
        config={"smoke": args.smoke, "repeats": repeats},
        timings={"measured_s": measured_s, "analytic_s": analytic_s},
        derived={"checks_passed": True},
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
