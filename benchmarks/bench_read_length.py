"""Bench: read-length scaling via fragmentation.

Sweeps the read length from one array width (no fragmentation) to 4x
(four fragments) and reports origin-recovery rate and per-read search
cost — the practical face of the paper's read-length discussion
(Section V-D): wider arrays (possible in the charge domain) need fewer
fragments and recover more reads at the same total edit budget.
"""

from __future__ import annotations

import numpy as np

from repro.cam.array import CamArray
from repro.core.fragmentation import FragmentedMatcher
from repro.eval.reporting import format_table
from repro.genome.edits import ErrorModel
from repro.genome.generator import generate_reference
from repro.genome.reads import ReadSampler

ARRAY_WIDTH = 128
N_SEGMENTS = 12
N_READS = 24
THRESHOLD_PER_256 = 6  # edit budget scales with read length


def _recovery(n_fragments: int, seed: int = 0) -> tuple[float, int]:
    read_length = ARRAY_WIDTH * n_fragments
    reference = generate_reference(N_SEGMENTS * read_length + 1024,
                                   seed=seed, with_repeats=False)
    segments = np.stack([
        reference.codes[i * read_length : (i + 1) * read_length]
        for i in range(N_SEGMENTS)
    ])
    array = CamArray(rows=N_SEGMENTS * n_fragments, cols=ARRAY_WIDTH,
                     domain="charge", seed=seed)
    matcher = FragmentedMatcher(array, segments,
                                min_fragment_matches=n_fragments)
    model = ErrorModel(substitution=0.008)
    sampler = ReadSampler(reference, read_length, model, seed=seed + 1)
    rng = np.random.default_rng(seed + 2)
    threshold = max(1, THRESHOLD_PER_256 * read_length // 256)
    recovered = 0
    searches = 0
    for _ in range(N_READS):
        origin = int(rng.integers(0, N_SEGMENTS))
        record = sampler.sample_at(origin * read_length)
        outcome = matcher.match(record.read.codes, threshold)
        recovered += int(outcome.decisions[origin])
        searches += outcome.n_searches
    return recovered / N_READS, searches // N_READS


def bench_read_length_scaling(benchmark):
    def sweep():
        return {n: _recovery(n) for n in (1, 2, 4)}

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)
    rows = [
        (ARRAY_WIDTH * n, n, rate * 100, searches)
        for n, (rate, searches) in results.items()
    ]
    # Search count scales linearly with fragments; recovery must stay
    # usable at every length.
    assert results[1][1] == 1
    assert results[4][1] == 4
    assert all(rate >= 0.5 for rate, _ in results.values())
    print()
    print(format_table(
        ["read length", "fragments", "recovery %", "searches/read"],
        rows, title="Read-length scaling via fragmentation",
    ))
