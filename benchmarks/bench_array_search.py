"""Bench: the simulated CAM array search operation itself.

Measures the behavioural simulator's throughput for the paper's
256 x 256 array in both domains and both match modes, plus the full
strategy-enabled matcher — the inner loop of every accuracy experiment.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.cam.array import CamArray
from repro.cam.cell import MatchMode
from repro.core.matcher import AsmCapMatcher, MatcherConfig
from repro.genome.edits import ErrorModel


@pytest.fixture(scope="module")
def loaded_arrays(bench_rng):
    segments = bench_rng.integers(0, 4, (256, 256)).astype(np.uint8)
    charge = CamArray(rows=256, cols=256, domain="charge", seed=0)
    charge.store(segments)
    current = CamArray(rows=256, cols=256, domain="current", seed=0)
    current.store(segments)
    read = bench_rng.integers(0, 4, 256).astype(np.uint8)
    return charge, current, read


def bench_charge_search_ed_star(benchmark, loaded_arrays):
    charge, _, read = loaded_arrays
    result = benchmark(charge.search, read, 8, MatchMode.ED_STAR)
    assert result.matches.shape == (256,)


def bench_charge_search_hamming(benchmark, loaded_arrays):
    charge, _, read = loaded_arrays
    result = benchmark(charge.search, read, 8, MatchMode.HAMMING)
    assert result.matches.shape == (256,)


def bench_current_search(benchmark, loaded_arrays):
    _, current, read = loaded_arrays
    result = benchmark(current.search, read, 8, MatchMode.ED_STAR)
    assert result.matches.shape == (256,)


def bench_full_matcher_condition_a(benchmark, loaded_arrays):
    charge, _, read = loaded_arrays
    matcher = AsmCapMatcher(charge, ErrorModel.condition_a(),
                            MatcherConfig(), seed=0)
    outcome = benchmark(matcher.match, read, 2)
    assert outcome.n_searches == 2  # ED* + HDAC's Hamming pass


def bench_full_matcher_condition_b_rotating(benchmark, loaded_arrays):
    charge, _, read = loaded_arrays
    matcher = AsmCapMatcher(charge, ErrorModel.condition_b(),
                            MatcherConfig(), seed=0)
    outcome = benchmark(matcher.match, read, 8)  # above Tl = 6
    assert outcome.tasr is not None and outcome.tasr.triggered
