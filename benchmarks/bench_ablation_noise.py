"""Ablation bench: sensing-noise models and the hardware F1 gap.

Reproduces the 'ASMCap w/o strategies vs EDAM' hardware-only gap and
shows how it responds to the noise model: the charge domain at the
paper's 1.4 % capacitor sigma, the current domain at its 2.5 % noise
floor, the optimistic count-dependent current model, and inflated
capacitor variation (where ASMCap's advantage should erode).
"""

from __future__ import annotations

import numpy as np

from repro.cam.array import CamArray
from repro.cam.variation import CurrentDomainVariation
from repro.eval.confusion import ConfusionMatrix
from repro.eval.ground_truth import label_dataset
from repro.eval.reporting import format_table

THRESHOLDS = (1, 2, 3, 4)


def _mean_f1_with_array(dataset, truth, array):
    from repro.cam.cell import MatchMode
    scores = []
    for threshold in THRESHOLDS:
        matrix = ConfusionMatrix()
        labels = truth.labels(threshold)
        for index, record in enumerate(dataset.reads):
            result = array.search(record.read.codes, threshold,
                                  MatchMode.ED_STAR)
            matrix.update(result.matches, labels[index])
        scores.append(matrix.f1)
    return float(np.mean(scores))


def bench_noise_models(benchmark, bench_dataset_a):
    dataset = bench_dataset_a
    truth = label_dataset(dataset, max(THRESHOLDS))

    def build(domain, sigma=None, count_dependent=False, seed=0):
        array = CamArray(rows=dataset.n_segments, cols=dataset.read_length,
                         domain=domain, sigma_rel=sigma, seed=seed)
        if count_dependent:
            array._variation = CurrentDomainVariation(count_dependent=True)
        array.store(dataset.segments)
        return array

    def sweep():
        return {
            "charge 1.4% (ASMCap)": _mean_f1_with_array(
                dataset, truth, build("charge")),
            "charge 10%": _mean_f1_with_array(
                dataset, truth, build("charge", sigma=0.10, seed=1)),
            "current floor (EDAM)": _mean_f1_with_array(
                dataset, truth, build("current", seed=2)),
            "current count-dep.": _mean_f1_with_array(
                dataset, truth, build("current", count_dependent=True,
                                      seed=3)),
            "ideal (no noise)": _mean_f1_with_array(
                dataset, truth,
                CamArrayNoNoise(dataset)),
        }

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)
    # The hardware ordering the paper's Section V-D analysis implies.
    # A single Monte-Carlo draw has a few-percent spread (current-domain
    # noise occasionally flips a decision the right way), so allow a
    # small tolerance on the pairwise comparisons.
    assert results["charge 1.4% (ASMCap)"] >= \
        results["current floor (EDAM)"] - 0.03
    assert results["ideal (no noise)"] >= \
        results["current floor (EDAM)"] - 0.03
    # The charge domain at paper sigma is essentially ideal.
    assert abs(results["charge 1.4% (ASMCap)"]
               - results["ideal (no noise)"]) < 0.02
    print()
    print(format_table(
        ["noise model", "mean F1 (T=1..4)"],
        list(results.items()),
        title="Sensing-noise ablation, Condition A",
    ))


def CamArrayNoNoise(dataset):
    array = CamArray(rows=dataset.n_segments, cols=dataset.read_length,
                     domain="charge", noisy=False)
    array.store(dataset.segments)
    return array
