"""Soak bench: streamed mapping with a bounded-memory cost ledger.

Streams a large read workload through
:class:`repro.service.StreamingMappingService` twice — once with the
ledger's opt-in compaction mode, once append-only — sampling the
ledger's live event count and retained mismatch-population elements as
the stream progresses, then runs the same workload through one one-shot
``run_batched`` call.  It demonstrates and **asserts** the PR's two
claims:

* **bounded memory** — under compaction the live event count and
  retained populations plateau at the compaction bound, while the
  append-only ledger grows linearly with the stream;
* **determinism** — the streamed session's aggregate
  :class:`~repro.core.pipeline.MappingReport` (per-read decisions and
  costs included) is bit-identical to the one-shot ``run_batched``
  execution, and every ledger view of the compacted run is
  bit-identical to the uncompacted streamed run.

(The pass-granular ledger views of a *streamed* session agree with the
one-shot session to float precision, not bit-for-bit: a micro-batch
boundary changes how per-query energies group into per-pass sums.  The
per-read report is grouping-invariant — that is the service's
contract.)

Usage::

    python benchmarks/bench_service_stream.py             # 100k-read soak
    python benchmarks/bench_service_stream.py --smoke     # tiny CI run
    python benchmarks/bench_service_stream.py --reads 250000 --engine sharded
"""

from __future__ import annotations

import argparse
import sys
import time

import numpy as np

from conftest import add_json_argument, write_bench_json
from repro.cam.array import CamArray
from repro.core.matcher import AsmCapMatcher, MatcherConfig
from repro.core.pipeline import ReadMappingPipeline, ShardedReadMappingPipeline
from repro.genome.datasets import build_dataset
from repro.service import StreamingMappingService


def build_workload(n_reads: int, read_length: int, n_segments: int,
                   condition: str, seed: int):
    dataset = build_dataset(condition, n_reads=n_reads,
                            read_length=read_length,
                            n_segments=n_segments, seed=seed)
    reads = np.stack([record.read.codes for record in dataset.reads])
    return dataset, reads


def stream_workload(dataset, reads, args, compaction: "int | None"):
    """One streamed pass; returns (service, report, samples, seconds).

    ``samples`` rows are ``(reads_dispatched, live_events,
    population_elements)`` taken every ``--sample-every`` micro-batches
    — the memory trajectory the soak comparison plots.
    """
    service = StreamingMappingService(
        dataset.segments, dataset.model, threshold=args.threshold,
        engine=args.engine, micro_batch=args.micro_batch,
        compaction=compaction, seed=args.seed,
        n_shards=(args.shards if args.engine == "sharded" else None),
    )
    samples = []
    start = time.perf_counter()
    sampled_batches = 0
    for begin in range(0, reads.shape[0], args.micro_batch):
        service.submit_many(reads[begin:begin + args.micro_batch])
        sampled_batches += 1
        if sampled_batches % args.sample_every == 0:
            snap = service.stats()
            samples.append((snap.reads_dispatched,
                            snap.ledger_events_live,
                            snap.ledger_population_elements))
    report = service.close()
    elapsed = time.perf_counter() - start
    snap = service.stats()
    samples.append((snap.reads_dispatched, snap.ledger_events_live,
                    snap.ledger_population_elements))
    return service, report, samples, elapsed


def one_shot(dataset, reads, args):
    """The equivalent one-shot execution (same seeds, same engine)."""
    start = time.perf_counter()
    if args.engine == "batched":
        array = CamArray(rows=dataset.segments.shape[0],
                         cols=reads.shape[1], domain="charge",
                         noisy=True, seed=args.seed)
        array.store(dataset.segments)
        pipeline = ReadMappingPipeline(
            AsmCapMatcher(array, dataset.model, MatcherConfig(),
                          seed=args.seed)
        )
        report = pipeline.run_batched(reads, args.threshold)
    else:
        with ShardedReadMappingPipeline(
                dataset.segments, dataset.model, n_shards=args.shards,
                noisy=True, seed=args.seed) as pipeline:
            report = pipeline.run(reads, args.threshold)
    return report, time.perf_counter() - start


def assert_bit_identical(streamed, reference) -> None:
    """The streamed report must equal the one-shot report exactly."""
    assert streamed.n_reads == reference.n_reads
    assert streamed.n_mapped == reference.n_mapped
    assert streamed.n_unique == reference.n_unique
    assert streamed.n_searches == reference.n_searches
    assert streamed.total_energy_joules == reference.total_energy_joules
    assert streamed.total_latency_ns == reference.total_latency_ns
    for ours, theirs in zip(streamed.mappings, reference.mappings, strict=True):
        assert ours.read_index == theirs.read_index
        assert ours.matched_rows == theirs.matched_rows
        assert ours.outcome.energy_joules == theirs.outcome.energy_joules
        assert ours.outcome.latency_ns == theirs.outcome.latency_ns


def main(argv: "list[str] | None" = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--reads", type=int, default=100_000)
    parser.add_argument("--read-length", type=int, default=96)
    parser.add_argument("--segments", type=int, default=32)
    parser.add_argument("--threshold", type=int, default=6)
    parser.add_argument("--condition", default="B", choices=("A", "B"),
                        help="B at T=6 issues ED* + 2*NR TASR rotations "
                             "per batch (a rich event stream)")
    parser.add_argument("--engine", default="batched",
                        choices=("batched", "sharded"))
    parser.add_argument("--shards", type=int, default=4)
    parser.add_argument("--micro-batch", type=int, default=512)
    parser.add_argument("--compaction", type=int, default=8,
                        help="live-event bound of the compacting arm")
    parser.add_argument("--sample-every", type=int, default=16,
                        help="memory samples every N micro-batches")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--smoke", action="store_true",
                        help="tiny sizes for CI hot-path checks")
    add_json_argument(parser)
    args = parser.parse_args(argv)

    if args.smoke:
        args.reads, args.read_length, args.segments = 2000, 64, 24
        args.micro_batch, args.sample_every = 128, 4

    dataset, reads = build_workload(args.reads, args.read_length,
                                    args.segments, args.condition,
                                    args.seed)

    compacted_svc, compacted_rep, compacted_samples, compacted_s = \
        stream_workload(dataset, reads, args, args.compaction)
    plain_svc, plain_rep, plain_samples, plain_s = \
        stream_workload(dataset, reads, args, None)
    reference_rep, reference_s = one_shot(dataset, reads, args)

    print(f"\nbench_service_stream: {args.reads} streamed reads x "
          f"{args.segments} segments x {args.read_length} bases, "
          f"T={args.threshold}, condition {args.condition}, "
          f"engine {args.engine}, micro-batch {args.micro_batch}, "
          f"compaction bound {args.compaction}")

    print(f"\n{'reads':>9}  {'live events':>22}  {'population elems':>24}")
    print(f"{'':>9}  {'compacted':>10} {'plain':>11}  "
          f"{'compacted':>11} {'plain':>12}")
    for (reads_c, events_c, pop_c), (_, events_p, pop_p) in zip(
            compacted_samples, plain_samples, strict=True):
        print(f"{reads_c:>9}  {events_c:>10} {events_p:>11}  "
              f"{pop_c:>11} {pop_p:>12}")

    snap = compacted_svc.stats()
    print(f"\ncompacted arm: {snap.compactions} compactions, "
          f"{snap.ledger_events_folded} events folded, "
          f"pass counts {snap.pass_counts}")
    for label, seconds, report in (
            ("streamed+compaction", compacted_s, compacted_rep),
            ("streamed append-only", plain_s, plain_rep),
            ("one-shot run", reference_s, reference_rep)):
        print(f"{label:<22} {seconds:>7.2f} s  "
              f"{args.reads / seconds:>9.0f} reads/s  "
              f"mapped {report.mapped_fraction:.3f}")

    # -- bounded memory: plateau vs linear ------------------------------
    peak_live = max(events for _, events, _ in compacted_samples)
    final_plain = plain_samples[-1][1]
    # Per ledger, the compacting arm never holds more than the bound
    # plus its checkpoint; ledger_events_live sums over every ledger
    # the engine owns (1 for batched, n_shards + 1 for sharded), plus
    # one not-yet-folded micro-batch of passes as slack.
    n_batches = max(1, plain_svc.stats().batches_dispatched)
    passes_per_batch = -(-final_plain // n_batches)  # ceil
    n_ledgers = len(compacted_svc.ledgers())
    bound = n_ledgers * (args.compaction + 1) + passes_per_batch + 1
    failed = False
    if peak_live > bound:
        print(f"FAIL: compacted live events peaked at {peak_live} > "
              f"bound {bound}", file=sys.stderr)
        failed = True
    if final_plain < 2 * peak_live:
        print(f"FAIL: append-only ledger ({final_plain} events) did not "
              f"outgrow the compacted plateau ({peak_live})",
              file=sys.stderr)
        failed = True
    half = len(plain_samples) // 2
    if half >= 1 and plain_samples[-1][1] < 1.5 * plain_samples[half - 1][1]:
        print("FAIL: append-only ledger growth is not linear-like",
              file=sys.stderr)
        failed = True

    # -- determinism: streamed == one-shot, compacted == plain ----------
    assert_bit_identical(compacted_rep, reference_rep)
    assert_bit_identical(plain_rep, reference_rep)
    assert compacted_svc.merged_stats() == plain_svc.merged_stats(), \
        "compacted ledger views drifted from the uncompacted views"
    print("\nOK: bounded ledger memory"
          if not failed else "\nbounded-memory check FAILED")
    print("OK: streamed report bit-identical to one-shot run_batched; "
          "compacted views bit-identical to append-only views")
    write_bench_json(
        args.json, bench="bench_service_stream",
        config={"reads": args.reads, "read_length": args.read_length,
                "segments": args.segments, "threshold": args.threshold,
                "condition": args.condition, "engine": args.engine,
                "shards": args.shards, "micro_batch": args.micro_batch,
                "compaction": args.compaction, "seed": args.seed,
                "smoke": args.smoke},
        timings={"compacted_s": compacted_s, "plain_s": plain_s,
                 "one_shot_s": reference_s},
        derived={"peak_live_events": peak_live,
                 "final_plain_events": final_plain,
                 "live_event_bound": bound,
                 "compactions": snap.compactions,
                 "events_folded": snap.ledger_events_folded,
                 "gate_passed": not failed},
    )
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
