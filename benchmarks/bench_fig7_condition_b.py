"""Bench: regenerate Fig. 7, Condition B (indel-dominant).

TASR's gains must concentrate at thresholds >= Tl = 6.
"""

from __future__ import annotations

import numpy as np

from repro.experiments.fig7 import (
    SYSTEM_EDAM,
    SYSTEM_FULL,
    SYSTEM_PLAIN,
    run_fig7,
)


def bench_fig7_condition_b(benchmark):
    result = benchmark.pedantic(
        run_fig7,
        kwargs={"condition": "B", "n_runs": 2, "n_reads": 64,
                "n_segments": 64, "seed": 12},
        rounds=1, iterations=1,
    )
    assert result.sweep.mean_ratio(SYSTEM_FULL, SYSTEM_EDAM) > 1.0
    thresholds = np.array(result.thresholds)
    full = result.sweep.systems[SYSTEM_FULL].mean
    plain = result.sweep.systems[SYSTEM_PLAIN].mean
    above = thresholds >= 6
    assert (full[above] - plain[above]).mean() > \
        (full[~above] - plain[~above]).mean()
    print()
    print(result.render())
