"""Ablation bench: HDAC hyper-parameters (alpha, beta) around the
paper's (200, 0.5) on Condition A.

DESIGN.md calls the paper's f() "only an example"; this bench quantifies
how sensitive the F1 gain is to the two constants.  The paper's setting
must be within noise of the best sweep point at small thresholds.
"""

from __future__ import annotations

import numpy as np

from repro.cam.array import CamArray
from repro.core.matcher import AsmCapMatcher, MatcherConfig
from repro.eval.confusion import ConfusionMatrix
from repro.eval.ground_truth import label_dataset
from repro.eval.reporting import format_table

ALPHAS = (50.0, 200.0, 800.0)
BETAS = (0.25, 0.5, 1.0)
THRESHOLDS = (1, 2, 3)


def _mean_f1(dataset, truth, config, seed=0):
    array = CamArray(rows=dataset.n_segments, cols=dataset.read_length,
                     domain="charge", noisy=True, seed=seed)
    array.store(dataset.segments)
    matcher = AsmCapMatcher(array, dataset.model, config, seed=seed + 1)
    scores = []
    for threshold in THRESHOLDS:
        matrix = ConfusionMatrix()
        labels = truth.labels(threshold)
        for index, record in enumerate(dataset.reads):
            decisions = matcher.match(record.read.codes, threshold).decisions
            matrix.update(decisions, labels[index])
        scores.append(matrix.f1)
    return float(np.mean(scores))


def bench_hdac_alpha_beta_sweep(benchmark, bench_dataset_a):
    dataset = bench_dataset_a
    truth = label_dataset(dataset, max(THRESHOLDS))

    def sweep():
        rows = []
        for alpha in ALPHAS:
            for beta in BETAS:
                config = MatcherConfig(enable_tasr=False, hdac_alpha=alpha,
                                       hdac_beta=beta)
                rows.append((alpha, beta, _mean_f1(dataset, truth, config)))
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    baseline = _mean_f1(dataset, truth, MatcherConfig.plain())
    paper_point = next(f1 for a, b, f1 in rows if a == 200.0 and b == 0.5)
    best = max(f1 for _, _, f1 in rows)
    # The paper's setting must beat no-HDAC and sit near the sweep's best.
    assert paper_point > baseline
    assert paper_point >= best - 0.08
    print()
    print(format_table(
        ["alpha", "beta", "mean F1 (T=1..3)"],
        rows + [("(no HDAC)", "-", baseline)],
        title="HDAC ablation, Condition A",
    ))
