"""Ablation bench: TASR parameters on Condition B.

Sweeps NR (rotations per direction), the rotation direction, and gamma
(which sets Tl), including gamma = 0 — which degenerates TASR into
EDAM's unconditional SR and must reproduce SR's small-T false
positives (the Fig. 6 motivation for threshold awareness).
"""

from __future__ import annotations

import numpy as np

from repro.cam.array import CamArray
from repro.core.matcher import AsmCapMatcher, MatcherConfig
from repro.eval.confusion import ConfusionMatrix
from repro.eval.ground_truth import label_dataset
from repro.eval.reporting import format_table

THRESHOLDS = (2, 4, 6, 8, 10, 12, 14, 16)


def _f1_series(dataset, truth, config, seed=0):
    array = CamArray(rows=dataset.n_segments, cols=dataset.read_length,
                     domain="charge", noisy=True, seed=seed)
    array.store(dataset.segments)
    matcher = AsmCapMatcher(array, dataset.model, config, seed=seed + 1)
    series = []
    for threshold in THRESHOLDS:
        matrix = ConfusionMatrix()
        labels = truth.labels(threshold)
        for index, record in enumerate(dataset.reads):
            decisions = matcher.match(record.read.codes, threshold).decisions
            matrix.update(decisions, labels[index])
        series.append(matrix.f1)
    return np.array(series)


def bench_tasr_parameters(benchmark, bench_dataset_b):
    dataset = bench_dataset_b
    truth = label_dataset(dataset, max(THRESHOLDS))

    configs = {
        "no TASR": MatcherConfig(enable_hdac=False, enable_tasr=False),
        "TASR NR=1": MatcherConfig(enable_hdac=False, tasr_nr=1),
        "TASR NR=2 (paper)": MatcherConfig(enable_hdac=False),
        "TASR NR=4": MatcherConfig(enable_hdac=False, tasr_nr=4),
        "TASR left-only": MatcherConfig(enable_hdac=False,
                                        tasr_direction="left"),
        "SR (gamma=0)": MatcherConfig(enable_hdac=False, tasr_gamma=0.0),
    }

    def sweep():
        return {name: _f1_series(dataset, truth, config, seed=i)
                for i, (name, config) in enumerate(configs.items())}

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)
    thresholds = np.array(THRESHOLDS)
    above = thresholds >= 6  # Tl = 6 in Condition B

    paper = results["TASR NR=2 (paper)"]
    plain = results["no TASR"]
    sr = results["SR (gamma=0)"]

    # TASR must lift the rotating region.
    assert paper[above].mean() > plain[above].mean()
    # Threshold awareness: at T < Tl TASR == plain (no rotations), while
    # unconditional SR may only lose F1 there (the Fig. 6 FP risk).
    assert np.allclose(paper[~above], plain[~above], atol=1e-9)
    assert sr[~above].mean() <= paper[~above].mean() + 1e-9
    print()
    print(format_table(
        ["variant"] + [f"T={t}" for t in THRESHOLDS],
        [(name, *np.round(series, 3)) for name, series in results.items()],
        title="TASR ablation, Condition B",
    ))
