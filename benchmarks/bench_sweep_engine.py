"""Bench: scalar per-threshold vs batched sweep-engine Fig. 7 curves.

The Fig. 7 Monte-Carlo experiment evaluates every system over a whole
threshold vector.  The scalar path issues one full CAM search flow per
(run, system, threshold, read) cell; the sweep engine
(:meth:`repro.core.matcher.AsmCapMatcher.match_sweep` and friends)
computes each pass's mismatch counts and keyed noise **once** per read
block and applies the entire threshold vector as vectorised sense-amp
reference comparisons — a T-point curve costs ~1 search pass per read
instead of T.

Both paths draw from the same keyed noise streams, so their F1 curves
are **bit-identical**; this bench asserts that and times the
difference twice:

* **engine** — the gated comparison: Monte-Carlo inputs (dataset +
  exact ground-truth labelling) are prepared once and shared, and the
  timed region covers system construction + the full dataset x system
  x threshold evaluation.  This isolates exactly the path the sweep
  engine replaced.
* **end-to-end** — ``run_fig7``-equivalent wall clock including input
  preparation (reported, not gated: the exact-ED labeller is the same
  work in both paths and bounds the achievable ratio).

Timing is best-of-``--repeats`` wall clock (robust against machine
noise).

Usage::

    python benchmarks/bench_sweep_engine.py                  # seed sizes
    python benchmarks/bench_sweep_engine.py --smoke          # tiny CI run
    python benchmarks/bench_sweep_engine.py \
        --condition A --min-speedup 10      # the PR's acceptance gate
"""

from __future__ import annotations

import argparse
import sys
import time

import numpy as np

from conftest import add_json_argument, write_bench_json
from repro.eval.confusion import ConfusionMatrix
from repro.eval.experiment import (
    AccuracyExperiment,
    asmcap_full_system,
    asmcap_plain_system,
    edam_system,
    kraken_system,
)
from repro.eval.sweeps import run_sweep
from repro.experiments.fig7 import (
    SYSTEM_EDAM,
    SYSTEM_FULL,
    SYSTEM_KRAKEN,
    SYSTEM_PLAIN,
    thresholds_for,
)
from repro.genome.datasets import build_dataset

SYSTEMS = {
    SYSTEM_EDAM: edam_system,
    SYSTEM_PLAIN: asmcap_plain_system,
    SYSTEM_FULL: asmcap_full_system,
    SYSTEM_KRAKEN: kraken_system,
}


def prepare_runs(condition: str, thresholds: "list[int]", n_runs: int,
                 n_reads: int, read_length: int, n_segments: int,
                 seed: int):
    """Build every run's dataset + labelled experiment (shared input).

    Seeding mirrors :func:`repro.eval.sweeps.run_sweep` exactly, so
    engine results computed on these inputs are bit-comparable to a
    full ``run_sweep``.
    """
    ordered = sorted({int(t) for t in thresholds})
    prepared = []
    for run in range(n_runs):
        dataset = build_dataset(condition, n_reads=n_reads,
                                read_length=read_length,
                                n_segments=n_segments,
                                seed=seed + run * 104729)
        experiment = AccuracyExperiment(dataset, ordered,
                                        seed=seed + run * 7)
        reads = np.stack([r.read.codes for r in dataset.reads])
        prepared.append((dataset, experiment, reads))
    return ordered, prepared


def scalar_engine(ordered: "list[int]", prepared) -> "dict[str, np.ndarray]":
    """The pre-sweep-engine path: one scalar match per (t, read) cell.

    Keys every scalar match by its read index, so the resulting
    ``f1_runs`` matrices are bit-comparable to the sweep engine's.
    """
    f1_runs: dict[str, list[list[float]]] = {name: [] for name in SYSTEMS}
    for dataset, experiment, reads in prepared:
        for i, (name, factory) in enumerate(SYSTEMS.items()):
            system = factory(dataset, experiment.seed + i * 7919)
            series: list[float] = []
            for threshold in ordered:
                truth = experiment.ground_truth.labels(threshold)
                matrix = ConfusionMatrix()
                for q in range(reads.shape[0]):
                    predicted = system.decide(reads[q], threshold,
                                              read_index=q)
                    matrix.update(predicted, truth[q])
                series.append(matrix.f1)
            f1_runs[name].append(series)
    return {name: np.array(runs, dtype=float)
            for name, runs in f1_runs.items()}


def sweep_engine(ordered: "list[int]", prepared) -> "dict[str, np.ndarray]":
    """The batched sweep engine on the same prepared inputs."""
    f1_runs: dict[str, list[list[float]]] = {name: [] for name in SYSTEMS}
    for _, experiment, _ in prepared:
        outcomes = experiment.evaluate_all(SYSTEMS)
        for name, outcome in outcomes.items():
            f1_runs[name].append(
                [outcome.per_threshold[t].f1 for t in ordered]
            )
    return {name: np.array(runs, dtype=float)
            for name, runs in f1_runs.items()}


def end_to_end_scalar(condition, thresholds, n_runs, n_reads,
                      read_length, n_segments, seed):
    ordered, prepared = prepare_runs(condition, thresholds, n_runs,
                                     n_reads, read_length, n_segments,
                                     seed)
    return scalar_engine(ordered, prepared)


def end_to_end_sweep(condition, thresholds, n_runs, n_reads,
                     read_length, n_segments, seed, n_workers):
    result = run_sweep(condition, SYSTEMS, thresholds, n_runs=n_runs,
                       n_reads=n_reads, read_length=read_length,
                       n_segments=n_segments, seed=seed,
                       n_workers=n_workers)
    return {name: series.f1_runs
            for name, series in result.systems.items()}


def timed(fn, repeats: int):
    """Best-of-``repeats`` wall time (robust against machine noise)."""
    best = float("inf")
    result = None
    for _ in range(max(1, repeats)):
        start = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - start)
    return best, result


def identical(a: "dict[str, np.ndarray]",
              b: "dict[str, np.ndarray]") -> bool:
    return all(np.array_equal(a[name], b[name]) for name in SYSTEMS)


def main(argv: "list[str] | None" = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--condition", default="both",
                        choices=("A", "B", "both"))
    parser.add_argument("--runs", type=int, default=3,
                        help="Monte-Carlo repetitions per condition")
    parser.add_argument("--reads", type=int, default=96)
    parser.add_argument("--read-length", type=int, default=256)
    parser.add_argument("--segments", type=int, default=128)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--workers", type=int, default=1,
                        help="sweep-engine Monte-Carlo worker threads "
                             "(1 isolates the single-thread engine win)")
    parser.add_argument("--repeats", type=int, default=2,
                        help="timed repetitions per path (best taken)")
    parser.add_argument("--smoke", action="store_true",
                        help="tiny sizes for CI hot-path checks")
    parser.add_argument("--min-speedup", type=float, default=0.0,
                        help="fail unless engine sweep/scalar >= this "
                             "factor on every timed condition")
    add_json_argument(parser)
    args = parser.parse_args(argv)

    if args.smoke:
        args.runs, args.reads = 2, 24
        args.read_length, args.segments = 64, 32
        args.repeats = 1

    conditions = ["A", "B"] if args.condition == "both" \
        else [args.condition]
    print(f"\nbench_sweep_engine: {args.runs} runs x {args.reads} reads "
          f"x {args.segments} segments x {args.read_length} bases, "
          f"{len(SYSTEMS)} systems, workers={args.workers}")
    print(f"{'condition':<10} {'scope':<10} {'scalar s':>10} "
          f"{'sweep s':>10} {'speedup':>9} {'identical':>10}")

    failed = False
    timings: "dict[str, float]" = {}
    derived: "dict[str, object]" = {}
    for condition in conditions:
        thresholds = thresholds_for(condition)
        shape = (condition, thresholds, args.runs, args.reads,
                 args.read_length, args.segments, args.seed)

        # Gated: engines over shared, pre-built Monte-Carlo inputs.
        ordered, prepared = prepare_runs(*shape)
        scalar_s, scalar_f1 = timed(
            lambda: scalar_engine(ordered, prepared), args.repeats)
        sweep_s, sweep_f1 = timed(
            lambda: sweep_engine(ordered, prepared), args.repeats)
        engine_ok = identical(scalar_f1, sweep_f1)
        engine_speedup = scalar_s / sweep_s if sweep_s else float("inf")
        print(f"{condition:<10} {'engine':<10} {scalar_s:>10.3f} "
              f"{sweep_s:>10.3f} {engine_speedup:>8.1f}x "
              f"{str(engine_ok):>10}")

        # Reported: full run including dataset + ground-truth prep.
        e2e_scalar_s, e2e_scalar_f1 = timed(
            lambda: end_to_end_scalar(*shape), args.repeats)
        e2e_sweep_s, e2e_sweep_f1 = timed(
            lambda: end_to_end_sweep(*shape, args.workers), args.repeats)
        e2e_ok = (identical(e2e_scalar_f1, e2e_sweep_f1)
                  and identical(e2e_sweep_f1, sweep_f1))
        e2e_speedup = (e2e_scalar_s / e2e_sweep_s if e2e_sweep_s
                       else float("inf"))
        print(f"{condition:<10} {'end-to-end':<10} {e2e_scalar_s:>10.3f} "
              f"{e2e_sweep_s:>10.3f} {e2e_speedup:>8.1f}x "
              f"{str(e2e_ok):>10}")

        if not (engine_ok and e2e_ok):
            print(f"FAIL: condition {condition}: sweep-engine F1 curves "
                  f"differ from the scalar path", file=sys.stderr)
            failed = True
        if args.min_speedup and engine_speedup < args.min_speedup:
            print(f"FAIL: condition {condition}: engine speedup "
                  f"{engine_speedup:.1f}x < {args.min_speedup:.1f}x",
                  file=sys.stderr)
            failed = True
        timings[f"{condition}_scalar_s"] = scalar_s
        timings[f"{condition}_sweep_s"] = sweep_s
        timings[f"{condition}_e2e_scalar_s"] = e2e_scalar_s
        timings[f"{condition}_e2e_sweep_s"] = e2e_sweep_s
        derived[f"{condition}_engine_speedup"] = engine_speedup
        derived[f"{condition}_e2e_speedup"] = e2e_speedup
        derived[f"{condition}_identical"] = bool(engine_ok and e2e_ok)
    derived["gate_passed"] = not failed
    write_bench_json(
        args.json, bench="bench_sweep_engine",
        config={"condition": args.condition, "runs": args.runs,
                "reads": args.reads, "read_length": args.read_length,
                "segments": args.segments, "seed": args.seed,
                "workers": args.workers, "repeats": args.repeats,
                "smoke": args.smoke, "min_speedup": args.min_speedup},
        timings=timings, derived=derived,
    )
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
