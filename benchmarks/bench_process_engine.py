"""Bench: thread vs process shard engine on one sharded workload.

The process engine (``engine="process"`` on
:class:`repro.core.pipeline.ShardedReadMappingPipeline`) trades spawn
cost for GIL-free shard workers over shared-memory stored references.
This bench drives the *same* sharded pipeline under both engines and
at a ladder of process worker counts, and checks the whole contract,
not just the clock:

* **bit-identity** (always asserted) — every process run's report must
  equal the thread baseline exactly: per-read matched rows, decisions,
  energy and latency, at every worker count;
* **encode-once** (always asserted) — workers attach shared segments,
  they never re-encode: ``worker_encode_counts()`` must stay all zero
  and the parent must have encoded each shard exactly once;
* **scaling** (opt-in gate) — ``--min-speedup F`` fails the run unless
  process@``--workers`` beats the thread engine by ``F``x.  Off by
  default: single-CPU CI containers cannot demonstrate parallel
  speedup, only correctness.

Usage::

    python benchmarks/bench_process_engine.py              # full sizes
    python benchmarks/bench_process_engine.py --smoke      # tiny CI run
    python benchmarks/bench_process_engine.py \
        --workers 4 --min-speedup 1.5      # the PR's acceptance gate
"""

from __future__ import annotations

import argparse
import sys
import time

import numpy as np

from conftest import add_json_argument, write_bench_json
from repro.core.pipeline import ShardedReadMappingPipeline
from repro.genome.datasets import build_dataset


def build_workload(n_reads: int, read_length: int, n_segments: int,
                   condition: str, seed: int):
    dataset = build_dataset(condition, n_reads=n_reads,
                            read_length=read_length,
                            n_segments=n_segments, seed=seed)
    reads = np.stack([record.read.codes for record in dataset.reads])
    return dataset, reads


def timed(fn, repeats: int):
    """Best-of-``repeats`` wall time (robust against machine noise)."""
    best = float("inf")
    result = None
    for _ in range(max(1, repeats)):
        start = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - start)
    return best, result


def reports_identical(a, b) -> bool:
    if (a.n_reads, a.n_mapped, a.n_unique, a.n_searches) != \
            (b.n_reads, b.n_mapped, b.n_unique, b.n_searches):
        return False
    if (a.total_energy_joules, a.total_latency_ns) != \
            (b.total_energy_joules, b.total_latency_ns):
        return False
    for left, right in zip(a.mappings, b.mappings, strict=True):
        if left.matched_rows != right.matched_rows:
            return False
        if not np.array_equal(left.outcome.decisions,
                              right.outcome.decisions):
            return False
    return True


def worker_ladder(top: int) -> "list[int]":
    ladder = [1]
    while ladder[-1] * 2 <= top:
        ladder.append(ladder[-1] * 2)
    if ladder[-1] != top:
        ladder.append(top)
    return ladder


def main(argv: "list[str] | None" = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--reads", type=int, default=400)
    parser.add_argument("--read-length", type=int, default=128)
    parser.add_argument("--segments", type=int, default=256)
    parser.add_argument("--shards", type=int, default=4)
    parser.add_argument("--threshold", type=int, default=8)
    parser.add_argument("--condition", default="A", choices=("A", "B"))
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--workers", type=int, default=4,
                        help="top of the process worker-count ladder")
    parser.add_argument("--repeats", type=int, default=2,
                        help="timed repetitions per engine (best taken)")
    parser.add_argument("--smoke", action="store_true",
                        help="tiny sizes for CI hot-path checks")
    parser.add_argument("--min-speedup", type=float, default=0.0,
                        help="fail unless process@--workers beats the "
                             "thread engine by this factor (opt-in: "
                             "needs a multi-CPU host)")
    add_json_argument(parser)
    args = parser.parse_args(argv)

    if args.smoke:
        args.reads, args.read_length, args.segments = 32, 64, 48
        args.shards, args.workers, args.repeats = 2, 2, 1

    dataset, reads = build_workload(args.reads, args.read_length,
                                    args.segments, args.condition,
                                    args.seed)

    def thread_run():
        with ShardedReadMappingPipeline(
                dataset.segments, dataset.model, n_shards=args.shards,
                seed=args.seed, engine="thread") as pipeline:
            return pipeline.run(reads, args.threshold)

    def process_run(n_workers: int):
        with ShardedReadMappingPipeline(
                dataset.segments, dataset.model, n_shards=args.shards,
                seed=args.seed, engine="process",
                max_workers=n_workers) as pipeline:
            report = pipeline.run(reads, args.threshold)
            engine = pipeline.process_engine()
            encode_counts = engine.worker_encode_counts()
            shard_encodes = tuple(
                shard.n_encodes for shard in pipeline._stored_shards
            )
            shared_mib = engine.shared_nbytes / (1 << 20)
            return report, encode_counts, shard_encodes, shared_mib

    thread_s, baseline = timed(thread_run, args.repeats)

    print(f"\nbench_process_engine: {args.reads} reads x "
          f"{args.segments} segments x {args.read_length} bases, "
          f"{args.shards} shards, T={args.threshold}, "
          f"condition {args.condition}")
    print(f"{'engine':<14} {'seconds':>9} {'reads/s':>12} {'speedup':>9} "
          f"{'identical':>10}")
    print(f"{'thread':<14} {thread_s:>9.3f} "
          f"{args.reads / thread_s:>12.1f} {'1.0x':>9} {'--':>10}")

    failed = False
    timings = {"thread_s": thread_s}
    derived = {"encode_once": True, "bit_identical": True}
    gated_speedup = None
    for n_workers in worker_ladder(max(1, args.workers)):
        process_s, outcome = timed(
            lambda n=n_workers: process_run(n), args.repeats)
        report, encode_counts, shard_encodes, shared_mib = outcome
        identical = reports_identical(baseline, report)
        encode_once = (all(count == 0 for count in encode_counts)
                       and all(count == 1 for count in shard_encodes))
        speedup = thread_s / process_s if process_s else float("inf")
        timings[f"process_{n_workers}w_s"] = process_s
        derived["bit_identical"] &= identical
        derived["encode_once"] &= encode_once
        derived[f"speedup_{n_workers}w"] = speedup
        if n_workers == args.workers:
            gated_speedup = speedup
        print(f"{f'process(x{n_workers})':<14} {process_s:>9.3f} "
              f"{args.reads / process_s:>12.1f} {speedup:>8.2f}x "
              f"{str(identical):>10}")
        if not identical:
            print(f"FAIL: process engine with {n_workers} workers is "
                  f"not bit-identical to the thread engine",
                  file=sys.stderr)
            failed = True
        if not encode_once:
            print(f"FAIL: encode-once violated with {n_workers} "
                  f"workers: worker encode counts {encode_counts}, "
                  f"shard encode counts {shard_encodes}",
                  file=sys.stderr)
            failed = True
        derived["shared_mib"] = shared_mib

    if args.min_speedup and (gated_speedup is None
                             or gated_speedup < args.min_speedup):
        print(f"FAIL: process@{args.workers} speedup "
              f"{(gated_speedup or 0.0):.2f}x < "
              f"{args.min_speedup:.2f}x", file=sys.stderr)
        failed = True
    derived["gate_passed"] = not failed

    write_bench_json(
        args.json, bench="bench_process_engine",
        config={"reads": args.reads, "read_length": args.read_length,
                "segments": args.segments, "shards": args.shards,
                "threshold": args.threshold,
                "condition": args.condition, "seed": args.seed,
                "workers": args.workers, "repeats": args.repeats,
                "smoke": args.smoke, "min_speedup": args.min_speedup},
        timings=timings, derived=derived,
    )
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
