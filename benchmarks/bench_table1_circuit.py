"""Bench: regenerate Table I (circuit-level EDAM vs ASMCap).

Asserts the paper's headline ratios while timing the model evaluation.
"""

from __future__ import annotations

import pytest

from repro.experiments.table1 import compute_table1


def bench_table1(benchmark):
    result = benchmark(compute_table1)
    assert result.area_ratio == pytest.approx(1.4, abs=0.05)
    assert result.search_time_ratio == pytest.approx(2.67, abs=0.1)
    assert result.power_ratio == pytest.approx(8.5, abs=0.3)
    print()
    print(result.render())
