"""Shared fixtures for the benchmark harness.

Each ``bench_*.py`` regenerates one paper artifact (table or figure)
under pytest-benchmark; run with::

    pytest benchmarks/ --benchmark-only

Slow Monte-Carlo benches use ``benchmark.pedantic`` with a single round
so the harness prints the artifact once per invocation instead of
re-simulating it dozens of times.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.genome.datasets import build_dataset


@pytest.fixture(scope="session")
def bench_dataset_a():
    """The Condition-A workload used by the accuracy benches."""
    return build_dataset("A", n_reads=48, read_length=256, n_segments=64,
                         seed=1)


@pytest.fixture(scope="session")
def bench_dataset_b():
    """The Condition-B workload used by the accuracy benches."""
    return build_dataset("B", n_reads=48, read_length=256, n_segments=64,
                         seed=2)


@pytest.fixture(scope="session")
def bench_rng():
    return np.random.default_rng(999)
