"""Shared fixtures and helpers for the benchmark harness.

Each ``bench_*.py`` regenerates one paper artifact (table or figure)
under pytest-benchmark; run with::

    pytest benchmarks/ --benchmark-only

Slow Monte-Carlo benches use ``benchmark.pedantic`` with a single round
so the harness prints the artifact once per invocation instead of
re-simulating it dozens of times.

The standalone ``python benchmarks/bench_*.py`` entry points also share
the machine-readable output contract defined here: every script takes
``--json PATH`` (:func:`add_json_argument`) and dumps one
``{"bench", "config", "timings", "derived"}`` document via
:func:`write_bench_json`, so CI can archive results and trend them
without scraping tables from stdout.
"""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.genome.datasets import build_dataset


def add_json_argument(parser) -> None:
    """Install the shared ``--json PATH`` benchmark option."""
    parser.add_argument(
        "--json", metavar="PATH", default=None,
        help="write a machine-readable {bench, config, timings, "
             "derived} summary to PATH",
    )


def write_bench_json(path: "str | None", *, bench: str, config: dict,
                     timings: dict, derived: dict) -> None:
    """Dump one benchmark run as JSON (no-op when *path* is None).

    ``bench`` names the script, ``config`` echoes the resolved knobs,
    ``timings`` holds raw seconds, and ``derived`` holds computed
    figures of merit (speedups, pass/fail gates, identity checks).
    """
    if path is None:
        return
    document = {
        "bench": bench,
        "config": config,
        "timings": timings,
        "derived": derived,
    }
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(document, handle, indent=2, sort_keys=True)
        handle.write("\n")


@pytest.fixture(scope="session")
def bench_dataset_a():
    """The Condition-A workload used by the accuracy benches."""
    return build_dataset("A", n_reads=48, read_length=256, n_segments=64,
                         seed=1)


@pytest.fixture(scope="session")
def bench_dataset_b():
    """The Condition-B workload used by the accuracy benches."""
    return build_dataset("B", n_reads=48, read_length=256, n_segments=64,
                         seed=2)


@pytest.fixture(scope="session")
def bench_rng():
    return np.random.default_rng(999)
