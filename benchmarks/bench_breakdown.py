"""Bench: regenerate the Section V-B area/power breakdown."""

from __future__ import annotations

import pytest

from repro.experiments.breakdown import compute_breakdown


def bench_breakdown(benchmark):
    result = benchmark(compute_breakdown)
    assert result.area_mm2 == pytest.approx(1.58, abs=0.02)
    assert result.power.total_w * 1e3 == pytest.approx(7.67, rel=1e-3)
    fractions = result.power.fractions
    assert fractions["cells"] == pytest.approx(0.75, abs=0.02)
    assert fractions["shift_registers"] == pytest.approx(0.19, abs=0.02)
    assert fractions["sense_amps"] == pytest.approx(0.06, abs=0.02)
    print()
    print(result.render())
