"""Microbenchmarks of the distance kernels and their backends.

Not a paper artifact, but the foundation of every experiment's runtime:
ED* (vectorised vs per-row), the batched banded DP, Myers, and the full
DP, all on paper-sized 256-base data — plus the registered
:mod:`repro.kernels` backends (float GEMM vs 2-bit-packed popcount)
head-to-head on the same encoded reference.

The pytest-benchmark functions measure locally under
``pytest benchmarks/bench_kernels.py -o python_files='bench_*.py'
-o python_functions='bench_*'``; the module also runs standalone::

    python benchmarks/bench_kernels.py           # paper-sized backend race
    python benchmarks/bench_kernels.py --smoke   # tiny CI correctness run

Standalone mode asserts cross-backend bit-identity before timing, so a
backend that drifts fails fast even when timings are ignored (no timing
gate — shared runners are too noisy for one).
"""

from __future__ import annotations

import argparse
import sys
import time

import numpy as np
import pytest

from conftest import add_json_argument, write_bench_json
from repro.distance.ed_star import ed_star_batch, mismatch_counts_all_reads
from repro.distance.edit_distance import (
    banded_edit_distance_batch,
    edit_distance,
)
from repro.distance.hamming import hamming_distance_batch
from repro.distance.myers import myers_edit_distance
from repro.genome.sequence import DnaSequence
from repro.kernels import available_backends, encode_reference, get_backend


@pytest.fixture(scope="module")
def workload(bench_rng):
    segments = bench_rng.integers(0, 4, (256, 256)).astype(np.uint8)
    reads = bench_rng.integers(0, 4, (16, 256)).astype(np.uint8)
    return segments, reads


def bench_ed_star_one_read_vs_array(benchmark, workload):
    segments, reads = workload
    counts = benchmark(ed_star_batch, segments, reads[0])
    assert counts.shape == (256,)


def bench_ed_star_all_reads(benchmark, workload):
    segments, reads = workload
    matrix = benchmark(mismatch_counts_all_reads, segments, reads)
    assert matrix.shape == (16, 256)


def bench_hamming_one_read_vs_array(benchmark, workload):
    segments, reads = workload
    counts = benchmark(hamming_distance_batch, segments, reads[0])
    assert counts.shape == (256,)


def bench_banded_batch_ground_truth(benchmark, workload):
    segments, reads = workload
    distances = benchmark.pedantic(
        banded_edit_distance_batch, args=(segments, reads, 18),
        rounds=2, iterations=1,
    )
    assert distances.shape == (16, 256)


def bench_myers_single_pair(benchmark, bench_rng):
    a = DnaSequence(bench_rng.integers(0, 4, 256).astype(np.uint8))
    b = DnaSequence(bench_rng.integers(0, 4, 256).astype(np.uint8))
    distance = benchmark(myers_edit_distance, a, b)
    assert distance == edit_distance(a, b)


def bench_full_dp_single_pair(benchmark, bench_rng):
    a = DnaSequence(bench_rng.integers(0, 4, 256).astype(np.uint8))
    b = DnaSequence(bench_rng.integers(0, 4, 256).astype(np.uint8))
    distance = benchmark(edit_distance, a, b)
    assert distance > 0


# -- kernel backends head-to-head (same encoded reference) ------------


@pytest.fixture(scope="module")
def encoded_workload(workload):
    segments, reads = workload
    return encode_reference(segments), reads


def bench_backend_gemm_dual(benchmark, encoded_workload):
    encoded, reads = encoded_workload
    ed, hd = benchmark(get_backend("numpy-gemm").counts_batch_dual,
                       encoded, reads)
    assert ed.shape == hd.shape == (16, 256)


def bench_backend_bitpacked_dual(benchmark, encoded_workload):
    encoded, reads = encoded_workload
    ed, hd = benchmark(get_backend("bitpacked").counts_batch_dual,
                       encoded, reads)
    assert ed.shape == hd.shape == (16, 256)


def bench_backend_gemm_ed_star(benchmark, encoded_workload):
    encoded, reads = encoded_workload
    counts = benchmark(get_backend("numpy-gemm").counts_batch,
                       encoded, reads, ed_star=True)
    assert counts.shape == (16, 256)


def bench_backend_bitpacked_ed_star(benchmark, encoded_workload):
    encoded, reads = encoded_workload
    counts = benchmark(get_backend("bitpacked").counts_batch,
                       encoded, reads, ed_star=True)
    assert counts.shape == (16, 256)


# -- standalone backend race (CI smoke + documented local numbers) ----


def timed(label: str, fn, repeats: int):
    """Best-of-``repeats`` wall time (robust against machine noise)."""
    best = float("inf")
    result = None
    for _ in range(max(1, repeats)):
        start = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - start)
    return label, best, result


def main(argv: "list[str] | None" = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--queries", type=int, default=16,
                        help="batch size B")
    parser.add_argument("--rows", type=int, default=256,
                        help="stored reference rows M")
    parser.add_argument("--cols", type=int, default=256,
                        help="row width N in bases")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--repeats", type=int, default=5,
                        help="timed repetitions per backend (best taken)")
    parser.add_argument("--smoke", action="store_true",
                        help="tiny sizes for CI hot-path checks")
    add_json_argument(parser)
    args = parser.parse_args(argv)

    if args.smoke:
        args.queries, args.rows, args.cols = 8, 64, 64

    rng = np.random.default_rng(args.seed)
    segments = rng.integers(0, 4, (args.rows, args.cols)).astype(np.uint8)
    queries = rng.integers(0, 4,
                           (args.queries, args.cols)).astype(np.uint8)
    encoded = encode_reference(segments)
    backends = [get_backend(name) for name in available_backends()]

    # Bit-identity first: every backend must return exactly the counts
    # of the boolean-sweep reference semantics before any timing.
    expected_ed = mismatch_counts_all_reads(segments, queries)
    expected_hd = np.count_nonzero(
        segments[None, :, :] != queries[:, None, :], axis=2
    ).astype(np.intp)
    for backend in backends:
        ed, hd = backend.counts_batch_dual(encoded, queries)
        assert np.array_equal(ed, expected_ed), backend.name
        assert np.array_equal(hd, expected_hd), backend.name

    rows = [
        timed(backend.name,
              lambda b=backend: b.counts_batch_dual(encoded, queries),
              args.repeats)
        for backend in backends
    ]
    base = next(elapsed for label, elapsed, _ in rows
                if label == "numpy-gemm")

    print(f"\nbench_kernels: dual ED*/HD counts, B={args.queries} "
          f"queries x M={args.rows} rows x N={args.cols} bases "
          f"(bit-identity checked)")
    print(f"{'backend':<14} {'seconds':>10} {'vs numpy-gemm':>14}")
    for label, elapsed, _ in rows:
        print(f"{label:<14} {elapsed:>10.6f} {base / elapsed:>13.2f}x")
    write_bench_json(
        args.json, bench="bench_kernels",
        config={"queries": args.queries, "rows": args.rows,
                "cols": args.cols, "seed": args.seed,
                "repeats": args.repeats, "smoke": args.smoke},
        timings={label: elapsed for label, elapsed, _ in rows},
        derived={f"speedup_{label}": base / elapsed
                 for label, elapsed, _ in rows},
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
