"""Microbenchmarks of the distance kernels.

Not a paper artifact, but the foundation of every experiment's runtime:
ED* (vectorised vs per-row), the batched banded DP, Myers, and the full
DP, all on paper-sized 256-base data.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.distance.ed_star import ed_star_batch, mismatch_counts_all_reads
from repro.distance.edit_distance import (
    banded_edit_distance_batch,
    edit_distance,
)
from repro.distance.hamming import hamming_distance_batch
from repro.distance.myers import myers_edit_distance
from repro.genome.sequence import DnaSequence


@pytest.fixture(scope="module")
def workload(bench_rng):
    segments = bench_rng.integers(0, 4, (256, 256)).astype(np.uint8)
    reads = bench_rng.integers(0, 4, (16, 256)).astype(np.uint8)
    return segments, reads


def bench_ed_star_one_read_vs_array(benchmark, workload):
    segments, reads = workload
    counts = benchmark(ed_star_batch, segments, reads[0])
    assert counts.shape == (256,)


def bench_ed_star_all_reads(benchmark, workload):
    segments, reads = workload
    matrix = benchmark(mismatch_counts_all_reads, segments, reads)
    assert matrix.shape == (16, 256)


def bench_hamming_one_read_vs_array(benchmark, workload):
    segments, reads = workload
    counts = benchmark(hamming_distance_batch, segments, reads[0])
    assert counts.shape == (256,)


def bench_banded_batch_ground_truth(benchmark, workload):
    segments, reads = workload
    distances = benchmark.pedantic(
        banded_edit_distance_batch, args=(segments, reads, 18),
        rounds=2, iterations=1,
    )
    assert distances.shape == (16, 256)


def bench_myers_single_pair(benchmark, bench_rng):
    a = DnaSequence(bench_rng.integers(0, 4, 256).astype(np.uint8))
    b = DnaSequence(bench_rng.integers(0, 4, 256).astype(np.uint8))
    distance = benchmark(myers_edit_distance, a, b)
    assert distance == edit_distance(a, b)


def bench_full_dp_single_pair(benchmark, bench_rng):
    a = DnaSequence(bench_rng.integers(0, 4, 256).astype(np.uint8))
    b = DnaSequence(bench_rng.integers(0, 4, 256).astype(np.uint8))
    distance = benchmark(edit_distance, a, b)
    assert distance > 0
