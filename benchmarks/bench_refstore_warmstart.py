"""Bench: cold-start boot (FASTA → encode → save) vs warm-start mmap.

The reference store (:mod:`repro.refstore`) exists to delete the
encode pass from service boot: the **first** boot parses the
reference FASTA, one-hot-encodes it and saves the store file
(:func:`repro.refstore.save_stored_reference`); every later boot maps
that file back via ``mmap`` — zero copy, zero encode.  This bench
measures both boot paths end to end, through the first mapped
micro-batch:

* **cold start** — parse the reference FASTA, encode, persist the
  store file, map the first read batch (the boot that *creates* the
  store);
* **warm start** — ``open_stored_reference`` the file, map the same
  first batch over the mapped arrays (every boot after the first).

Both paths run the same matcher configuration and seed, so the
contract is checked, not just the clock:

* **bit-identity** (always asserted) — the warm report must equal the
  cold report exactly: per-read matched rows, decisions, energy,
  latency;
* **encode-free** (always asserted) — the warm reference's
  ``n_encodes`` must be 0 before *and after* the batch;
* **speedup** (``--min-speedup``, default 10x, disabled under
  ``--smoke``) — warm boot must beat cold boot by the factor the PR
  promises at bench scale.

Usage::

    python benchmarks/bench_refstore_warmstart.py           # full gate
    python benchmarks/bench_refstore_warmstart.py --smoke   # CI identity
"""

from __future__ import annotations

import argparse
import os
import sys
import tempfile
import time

import numpy as np

from conftest import add_json_argument, write_bench_json
from repro.cam.array import StoredReference
from repro.core.matcher import AsmCapMatcher
from repro.core.pipeline import ReadMappingPipeline
from repro.genome import ErrorModel, generate_reference
from repro.genome.io_fasta import FastaRecord, parse_fasta, write_fasta
from repro.refstore import open_stored_reference, save_stored_reference


def reports_identical(a, b) -> bool:
    if (a.n_reads, a.n_mapped, a.n_unique, a.n_searches) != \
            (b.n_reads, b.n_mapped, b.n_unique, b.n_searches):
        return False
    if (a.total_energy_joules, a.total_latency_ns) != \
            (b.total_energy_joules, b.total_latency_ns):
        return False
    for left, right in zip(a.mappings, b.mappings, strict=True):
        if left.matched_rows != right.matched_rows:
            return False
        if not np.array_equal(left.outcome.decisions,
                              right.outcome.decisions):
            return False
    return True


def first_batch(reference: StoredReference, model, reads,
                threshold: int, seed: int):
    """Boot-critical tail: build the matcher and map the first batch."""
    matcher = AsmCapMatcher.over_stored(reference, model, seed=seed)
    return ReadMappingPipeline(matcher).run(reads, threshold)


def main(argv: "list[str] | None" = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--reads", type=int, default=2,
                        help="reads in the boot-latency probe batch")
    parser.add_argument("--read-length", type=int, default=256)
    parser.add_argument("--segments", type=int, default=4096)
    parser.add_argument("--threshold", type=int, default=8)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--repeats", type=int, default=3,
                        help="timed repetitions per path (best taken)")
    parser.add_argument("--smoke", action="store_true",
                        help="tiny sizes for CI hot-path checks; "
                             "disables the speedup gate (identity and "
                             "encode-freedom still asserted)")
    parser.add_argument("--min-speedup", type=float, default=10.0,
                        help="fail unless warm boot beats cold boot by "
                             "this factor (0 disables)")
    add_json_argument(parser)
    args = parser.parse_args(argv)

    if args.smoke:
        args.reads, args.read_length, args.segments = 2, 64, 48
        args.repeats = 1
        args.min_speedup = 0.0

    n_bases = args.segments * args.read_length
    reference = generate_reference(n_bases, seed=21)
    model = ErrorModel.condition_a()
    # The probe batch: true reference rows, so identity is checked on
    # reads that actually match.
    reads = np.stack([
        reference.codes[i * args.read_length:(i + 1) * args.read_length]
        for i in range(args.reads)
    ])

    with tempfile.TemporaryDirectory() as tmp:
        fasta_path = os.path.join(tmp, "reference.fa")
        write_fasta([FastaRecord("chr1", reference)], fasta_path)
        store_path = os.path.join(tmp, "reference.asmcap")

        def cold_boot():
            sequence = parse_fasta(fasta_path)[0].sequence
            segments = sequence.codes[:n_bases].reshape(
                args.segments, args.read_length)
            stored = StoredReference.encode(segments)
            save_stored_reference(store_path, stored)
            return first_batch(stored, model, reads, args.threshold,
                               args.seed)

        def warm_boot():
            with open_stored_reference(store_path) as mapped:
                report = first_batch(mapped.reference, model, reads,
                                     args.threshold, args.seed)
                return report, mapped.reference.n_encodes, mapped.nbytes

        cold_s = float("inf")
        cold_report = None
        for _ in range(max(1, args.repeats)):
            start = time.perf_counter()
            cold_report = cold_boot()
            cold_s = min(cold_s, time.perf_counter() - start)

        warm_s = float("inf")
        warm_report = None
        warm_encodes = -1
        store_bytes = 0
        for _ in range(max(1, args.repeats)):
            start = time.perf_counter()
            warm_report, warm_encodes, store_bytes = warm_boot()
            warm_s = min(warm_s, time.perf_counter() - start)

    speedup = cold_s / warm_s if warm_s else float("inf")
    identical = reports_identical(cold_report, warm_report)
    encode_free = warm_encodes == 0

    print(f"\nbench_refstore_warmstart: {args.segments} segments x "
          f"{args.read_length} bases ({n_bases / 1e6:.1f} Mbase), "
          f"{args.reads}-read probe batch, T={args.threshold}, "
          f"store {store_bytes / (1 << 20):.1f} MiB")
    print(f"{'path':<28} {'boot+batch s':>13} {'speedup':>9}")
    print(f"{'cold (parse+encode+save)':<28} {cold_s:>13.4f} {'1.0x':>9}")
    print(f"{'warm (mmap open)':<28} {warm_s:>13.4f} {speedup:>8.1f}x")
    print(f"warm n_encodes: {warm_encodes}   "
          f"bit-identical: {identical}")

    failed = False
    if not identical:
        print("FAIL: warm-start report is not bit-identical to the "
              "cold-start report", file=sys.stderr)
        failed = True
    if not encode_free:
        print(f"FAIL: warm path ran {warm_encodes} encode pass(es); "
              f"the store exists so it runs zero", file=sys.stderr)
        failed = True
    if args.min_speedup and speedup < args.min_speedup:
        print(f"FAIL: warm-start speedup {speedup:.1f}x < "
              f"{args.min_speedup:.1f}x", file=sys.stderr)
        failed = True

    write_bench_json(
        args.json, bench="bench_refstore_warmstart",
        config={"reads": args.reads, "read_length": args.read_length,
                "segments": args.segments, "threshold": args.threshold,
                "seed": args.seed, "repeats": args.repeats,
                "smoke": args.smoke, "min_speedup": args.min_speedup},
        timings={"cold_boot_s": cold_s, "warm_boot_s": warm_s},
        derived={"speedup": speedup, "bit_identical": identical,
                 "warm_n_encodes": warm_encodes,
                 "store_bytes": store_bytes,
                 "gate_passed": not failed},
    )
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
