"""Bench: defect-robustness sweep (graceful degradation).

Not a paper artifact; quantifies how mapping recovery falls as stuck
rows accumulate — the reliability counterpart of the Section V-E
fast-testing use case.
"""

from __future__ import annotations

from repro.experiments.ablations import defect_ablation


def bench_defect_sweep(benchmark):
    text = benchmark.pedantic(defect_ablation,
                              kwargs={"n_segments": 64, "seed": 1},
                              rounds=1, iterations=1)
    assert "100" in text          # zero-defect row recovers everything
    assert "Defect robustness" in text
    print()
    print(text)
