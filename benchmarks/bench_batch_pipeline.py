"""Bench: scalar vs batched vs sharded read-mapping throughput.

Wall-clock comparison of the three execution models of
:mod:`repro.core.pipeline` on one workload:

* **scalar** — the original per-read Python loop
  (``ReadMappingPipeline.run``);
* **batched** — one vectorised ``match_batch`` over the whole block
  (``ReadMappingPipeline.run_batched``);
* **sharded** — the reference partitioned across CAM-array shards
  searched by concurrent workers (``ShardedReadMappingPipeline.run``).

All three make bit-identical *digital* decisions for their own noise
streams; this bench measures simulator throughput (reads mapped per
wall-clock second), not modelled hardware latency.

Usage::

    python benchmarks/bench_batch_pipeline.py              # full sizes
    python benchmarks/bench_batch_pipeline.py --smoke      # tiny CI run
    python benchmarks/bench_batch_pipeline.py \
        --reads 1000 --shards 4 --min-batched-speedup 5.0  # regression gate
"""

from __future__ import annotations

import argparse
import sys
import time

import numpy as np

from conftest import add_json_argument, write_bench_json
from repro.cam.array import CamArray
from repro.core.matcher import AsmCapMatcher, MatcherConfig
from repro.core.pipeline import ReadMappingPipeline, ShardedReadMappingPipeline
from repro.genome.datasets import build_dataset


def build_workload(n_reads: int, read_length: int, n_segments: int,
                   condition: str, seed: int):
    dataset = build_dataset(condition, n_reads=n_reads,
                            read_length=read_length,
                            n_segments=n_segments, seed=seed)
    reads = np.stack([record.read.codes for record in dataset.reads])
    return dataset, reads


def timed(label: str, fn, repeats: int):
    """Best-of-``repeats`` wall time (robust against machine noise)."""
    best = float("inf")
    result = None
    for _ in range(max(1, repeats)):
        start = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - start)
    return label, best, result


def main(argv: "list[str] | None" = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--reads", type=int, default=1000)
    parser.add_argument("--read-length", type=int, default=128)
    parser.add_argument("--segments", type=int, default=128)
    parser.add_argument("--shards", type=int, default=4)
    parser.add_argument("--threshold", type=int, default=8)
    parser.add_argument("--condition", default="A", choices=("A", "B"))
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--repeats", type=int, default=3,
                        help="timed repetitions per path (best taken)")
    parser.add_argument("--smoke", action="store_true",
                        help="tiny sizes for CI hot-path checks")
    parser.add_argument("--min-batched-speedup", type=float, default=0.0,
                        help="fail unless batched/scalar >= this factor")
    parser.add_argument("--min-sharded-speedup", type=float, default=0.0,
                        help="fail unless sharded/scalar >= this factor")
    add_json_argument(parser)
    args = parser.parse_args(argv)

    if args.smoke:
        args.reads, args.read_length, args.segments = 64, 64, 32

    dataset, reads = build_workload(args.reads, args.read_length,
                                    args.segments, args.condition,
                                    args.seed)

    def scalar_run():
        array = CamArray(rows=args.segments, cols=args.read_length,
                         domain="charge", noisy=True, seed=args.seed)
        array.store(dataset.segments)
        matcher = AsmCapMatcher(array, dataset.model, MatcherConfig(),
                                seed=args.seed)
        return ReadMappingPipeline(matcher).run(reads, args.threshold)

    def batched_run():
        array = CamArray(rows=args.segments, cols=args.read_length,
                         domain="charge", noisy=True, seed=args.seed)
        array.store(dataset.segments)
        matcher = AsmCapMatcher(array, dataset.model, MatcherConfig(),
                                seed=args.seed)
        return ReadMappingPipeline(matcher).run_batched(reads,
                                                        args.threshold)

    def sharded_run():
        with ShardedReadMappingPipeline(
                dataset.segments, dataset.model, n_shards=args.shards,
                noisy=True, seed=args.seed) as pipeline:
            return pipeline.run(reads, args.threshold)

    rows = [
        timed("scalar", scalar_run, args.repeats),
        timed("batched", batched_run, args.repeats),
        timed(f"sharded(x{args.shards})", sharded_run, args.repeats),
    ]

    base = rows[0][1]
    print(f"\nbench_batch_pipeline: {args.reads} reads x "
          f"{args.segments} segments x {args.read_length} bases, "
          f"T={args.threshold}, condition {args.condition}")
    print(f"{'path':<14} {'seconds':>9} {'reads/s':>12} {'speedup':>9} "
          f"{'mapped':>7}")
    for label, elapsed, report in rows:
        print(f"{label:<14} {elapsed:>9.3f} "
              f"{args.reads / elapsed:>12.0f} {base / elapsed:>8.1f}x "
              f"{report.mapped_fraction:>7.2f}")

    batched_speedup = base / rows[1][1]
    sharded_speedup = base / rows[2][1]
    failed = False
    if args.min_batched_speedup and batched_speedup < args.min_batched_speedup:
        print(f"FAIL: batched speedup {batched_speedup:.1f}x < "
              f"{args.min_batched_speedup:.1f}x", file=sys.stderr)
        failed = True
    if args.min_sharded_speedup and sharded_speedup < args.min_sharded_speedup:
        print(f"FAIL: sharded speedup {sharded_speedup:.1f}x < "
              f"{args.min_sharded_speedup:.1f}x", file=sys.stderr)
        failed = True
    write_bench_json(
        args.json, bench="bench_batch_pipeline",
        config={"reads": args.reads, "read_length": args.read_length,
                "segments": args.segments, "shards": args.shards,
                "threshold": args.threshold,
                "condition": args.condition, "seed": args.seed,
                "repeats": args.repeats, "smoke": args.smoke},
        timings={label: elapsed for label, elapsed, _ in rows},
        derived={"batched_speedup": batched_speedup,
                 "sharded_speedup": sharded_speedup,
                 "mapped_fraction": rows[0][2].mapped_fraction,
                 "gate_passed": not failed},
    )
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
