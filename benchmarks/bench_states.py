"""Bench: regenerate the Section V-D distinguishable-states analysis."""

from __future__ import annotations

from repro.experiments.states import compute_states


def bench_states(benchmark):
    result = benchmark(compute_states)
    assert result.edam_states == 44
    assert result.asmcap_states == 566
    assert result.asmcap_supports_read
    assert not result.edam_supports_read
    print()
    print(result.render())
