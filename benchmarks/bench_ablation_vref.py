"""Ablation bench: V_ref placement — midpoint rule vs the paper's
literal ``V_ref = T/N * VDD``.

DESIGN.md documents the decision to centre the reference between
levels T and T+1; this bench quantifies it.  Under the strict rule a
boundary row (digital count exactly T) sits *on* the reference, so any
noise flips ~half of those decisions; the midpoint rule buys half a
level of margin.  The effect is dramatic in the current domain and
invisible in the (almost noise-free) charge domain.
"""

from __future__ import annotations

import numpy as np

from repro.cam.array import CamArray
from repro.eval.confusion import ConfusionMatrix
from repro.eval.ground_truth import label_dataset
from repro.eval.noise_margin import flip_probability
from repro.eval.reporting import format_table

THRESHOLDS = (1, 2, 3, 4)


def _mean_f1(dataset, truth, domain, strict, seed=0):
    array = CamArray(rows=dataset.n_segments, cols=dataset.read_length,
                     domain=domain, noisy=True, seed=seed,
                     strict_paper_vref=strict)
    array.store(dataset.segments)
    scores = []
    for threshold in THRESHOLDS:
        matrix = ConfusionMatrix()
        labels = truth.labels(threshold)
        for index, record in enumerate(dataset.reads):
            result = array.search(record.read.codes, threshold)
            matrix.update(result.matches, labels[index])
        scores.append(matrix.f1)
    return float(np.mean(scores))


def bench_vref_placement(benchmark, bench_dataset_a):
    dataset = bench_dataset_a
    truth = label_dataset(dataset, max(THRESHOLDS))

    def sweep():
        return {
            ("charge", "midpoint"): _mean_f1(dataset, truth, "charge",
                                             False),
            ("charge", "strict"): _mean_f1(dataset, truth, "charge", True,
                                           seed=1),
            ("current", "midpoint"): _mean_f1(dataset, truth, "current",
                                              False, seed=2),
            ("current", "strict"): _mean_f1(dataset, truth, "current",
                                            True, seed=3),
        }

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)
    # Analytic prediction: strict rule flips boundary rows ~50 % in the
    # current domain, so midpoint must not be worse there.
    boundary_flip = float(flip_probability(2, 2, dataset.read_length,
                                           "current",
                                           strict_paper_rule=True))
    assert boundary_flip > 0.45
    assert results[("current", "midpoint")] >= \
        results[("current", "strict")] - 0.02
    # The charge domain barely notices either way.
    assert abs(results[("charge", "midpoint")]
               - results[("charge", "strict")]) < 0.12
    print()
    print(format_table(
        ["domain", "V_ref rule", "mean F1 (T=1..4)"],
        [(d, r, f1) for (d, r), f1 in results.items()],
        title="V_ref placement ablation, Condition A",
    ))
