"""Bench: regenerate Fig. 7, Condition A (substitution-dominant).

F1 and normalized F1 vs threshold for EDAM / ASMCap w/o / ASMCap w/.
One Monte-Carlo round per invocation (the artifact is the printed
series, not a hot loop).
"""

from __future__ import annotations

from repro.experiments.fig7 import (
    SYSTEM_EDAM,
    SYSTEM_FULL,
    SYSTEM_PLAIN,
    run_fig7,
)


def bench_fig7_condition_a(benchmark):
    result = benchmark.pedantic(
        run_fig7,
        kwargs={"condition": "A", "n_runs": 2, "n_reads": 64,
                "n_segments": 64, "seed": 11},
        rounds=1, iterations=1,
    )
    # Shape checks mirroring the paper's Condition-A claims.
    assert result.sweep.mean_ratio(SYSTEM_FULL, SYSTEM_EDAM) > 1.0
    max_ratio, at_threshold = result.sweep.max_ratio(SYSTEM_FULL,
                                                     SYSTEM_EDAM)
    assert at_threshold <= 3          # biggest gain at the smallest T
    assert max_ratio > 1.15
    full = result.sweep.systems[SYSTEM_FULL].mean
    plain = result.sweep.systems[SYSTEM_PLAIN].mean
    assert full[0] >= plain[0]        # HDAC lifts T = 1
    print()
    print(result.render())
