"""Multi-session frontend bench: N concurrent sessions, one reference.

Serves the same read workload to ``--sessions`` concurrent clients two
ways and compares them:

* **frontend** — one :class:`repro.service.MappingFrontend` holding the
  reference encoded/stored **once**, with N :class:`MappingSession`\\ s
  fed from N threads through the persistent autotuned worker pool;
* **standalone** — N independent
  :class:`repro.service.StreamingMappingService` instances (the PR 4
  one-client design), each re-encoding and re-storing the reference,
  fed from N threads.

It demonstrates and **asserts** the PR's two claims:

* **encode once** — the frontend performs exactly ``n_shards`` one-hot
  encodes and records exactly ``n_shards``
  :class:`~repro.cost.events.ReferenceLoad` events *total*, while the
  standalone arm pays ``N x n_shards`` of each;
* **session isolation** — every frontend session's aggregate report is
  bit-identical to its standalone twin (same seed, same reads), so the
  multiplexing is free of cross-session interference.

It also reports aggregate throughput (reads/s over all sessions) and
the setup cost (time until a service can accept its first read) for
both arms.  Throughput on a shared CI runner is informational only —
no timing gate.

Usage::

    python benchmarks/bench_frontend_concurrency.py            # full soak
    python benchmarks/bench_frontend_concurrency.py --smoke    # tiny CI run
    python benchmarks/bench_frontend_concurrency.py --engine sharded
"""

from __future__ import annotations

import argparse
import sys
import threading
import time

import numpy as np

from conftest import add_json_argument, write_bench_json
from repro.cost.events import ReferenceLoad
from repro.genome.datasets import build_dataset
from repro.service import MappingFrontend, StreamingMappingService


def build_workload(args):
    dataset = build_dataset(args.condition, n_reads=args.reads,
                            read_length=args.read_length,
                            n_segments=args.segments, seed=args.seed)
    reads = np.stack([record.read.codes for record in dataset.reads])
    return dataset, reads


def _feed_threads(targets) -> None:
    """Run one feeder per (callable) target and join them all."""
    errors: "list[BaseException]" = []

    def guarded(fn):
        try:
            fn()
        except BaseException as exc:  # noqa: BLE001 — surfaced below
            errors.append(exc)

    threads = [threading.Thread(target=guarded, args=(fn,))
               for fn in targets]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    if errors:
        raise errors[0]


def _ledger_reference_loads(ledger) -> int:
    """ReferenceLoad events in a ledger, folded checkpoint included."""
    n = len(ledger.of_type(ReferenceLoad))
    if ledger.checkpoint is not None:
        n += ledger.checkpoint.n_reference_loads
    return n


def run_frontend(dataset, reads, args):
    """The concurrent arm: N sessions over one shared frontend."""
    setup_start = time.perf_counter()
    frontend = MappingFrontend(
        dataset.segments, dataset.model, engine=args.engine,
        n_shards=(args.shards if args.engine == "sharded" else None),
    )
    setup_s = time.perf_counter() - setup_start
    sessions = [
        frontend.session(threshold=args.threshold, seed=args.seed + s,
                         micro_batch=args.micro_batch)
        for s in range(args.sessions)
    ]
    start = time.perf_counter()
    _feed_threads([
        (lambda session=session: session.submit_many(reads))
        for session in sessions
    ])
    reports = [session.close() for session in sessions]
    elapsed = time.perf_counter() - start
    frontend.close()
    encodes = frontend.encode_count()
    loads = _ledger_reference_loads(frontend.ledger)
    for session in sessions:
        for ledger in session.ledgers():
            loads += _ledger_reference_loads(ledger)
    return reports, elapsed, setup_s, encodes, loads


def _service_encodes(service) -> int:
    if service.engine == "batched":
        return service.pipeline.matcher.array.stored.n_encodes
    return sum(m.array.stored.n_encodes
               for m in service.pipeline.matchers)


def run_standalone(dataset, reads, args):
    """The baseline arm: N independent single-client services."""
    setup_start = time.perf_counter()
    services = [
        StreamingMappingService(
            dataset.segments, dataset.model, threshold=args.threshold,
            engine=args.engine, micro_batch=args.micro_batch,
            seed=args.seed + s,
            n_shards=(args.shards if args.engine == "sharded" else None),
        )
        for s in range(args.sessions)
    ]
    setup_s = time.perf_counter() - setup_start
    start = time.perf_counter()
    _feed_threads([
        (lambda service=service: service.submit_many(reads))
        for service in services
    ])
    reports = [service.close() for service in services]
    elapsed = time.perf_counter() - start
    encodes = sum(_service_encodes(service) for service in services)
    loads = sum(_ledger_reference_loads(ledger)
                for service in services
                for ledger in service.ledgers())
    return reports, elapsed, setup_s, encodes, loads


def assert_bit_identical(ours, theirs) -> None:
    assert ours.n_reads == theirs.n_reads
    assert ours.n_mapped == theirs.n_mapped
    assert ours.n_searches == theirs.n_searches
    assert ours.total_energy_joules == theirs.total_energy_joules
    assert ours.total_latency_ns == theirs.total_latency_ns
    for a, b in zip(ours.mappings, theirs.mappings, strict=True):
        assert a.read_index == b.read_index
        assert a.matched_rows == b.matched_rows
        assert a.outcome.energy_joules == b.outcome.energy_joules
        assert a.outcome.latency_ns == b.outcome.latency_ns


def main(argv: "list[str] | None" = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--sessions", type=int, default=8)
    parser.add_argument("--reads", type=int, default=12_500,
                        help="reads per session")
    parser.add_argument("--read-length", type=int, default=96)
    parser.add_argument("--segments", type=int, default=64)
    parser.add_argument("--threshold", type=int, default=6)
    parser.add_argument("--condition", default="B", choices=("A", "B"))
    parser.add_argument("--engine", default="batched",
                        choices=("batched", "sharded"))
    parser.add_argument("--shards", type=int, default=4)
    parser.add_argument("--micro-batch", type=int, default=256)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--smoke", action="store_true",
                        help="tiny sizes for CI hot-path checks")
    add_json_argument(parser)
    args = parser.parse_args(argv)

    if args.smoke:
        args.sessions, args.reads = 4, 600
        args.read_length, args.segments = 64, 24
        args.micro_batch = 64

    dataset, reads = build_workload(args)
    n_total = args.sessions * args.reads

    fe_reports, fe_s, fe_setup, fe_encodes, fe_loads = \
        run_frontend(dataset, reads, args)
    sa_reports, sa_s, sa_setup, sa_encodes, sa_loads = \
        run_standalone(dataset, reads, args)

    n_shards = args.shards if args.engine == "sharded" else 1
    print(f"\nbench_frontend_concurrency: {args.sessions} sessions x "
          f"{args.reads} reads ({n_total} total), {args.segments} "
          f"segments x {args.read_length} bases, T={args.threshold}, "
          f"condition {args.condition}, engine {args.engine}, "
          f"micro-batch {args.micro_batch}")

    print(f"\n{'arm':<26} {'setup':>9}  {'stream':>9}  "
          f"{'agg reads/s':>12}  {'encodes':>8}  {'ref loads':>9}")
    for label, setup, seconds, encodes, loads in (
            ("frontend (shared ref)", fe_setup, fe_s, fe_encodes,
             fe_loads),
            (f"{args.sessions} standalone services", sa_setup, sa_s,
             sa_encodes, sa_loads)):
        print(f"{label:<26} {setup * 1e3:>7.1f}ms  {seconds:>8.2f}s  "
              f"{n_total / seconds:>12.0f}  {encodes:>8}  {loads:>9}")

    failed = False

    # -- encode-once evidence -------------------------------------------
    if fe_encodes != n_shards or fe_loads != n_shards:
        print(f"FAIL: frontend should encode/store the reference "
              f"exactly once per shard ({n_shards}), saw "
              f"{fe_encodes} encodes / {fe_loads} loads",
              file=sys.stderr)
        failed = True
    expected_standalone = args.sessions * n_shards
    if sa_encodes != expected_standalone or sa_loads != expected_standalone:
        print(f"FAIL: expected the standalone arm to pay "
              f"{expected_standalone} encodes/loads, saw "
              f"{sa_encodes} encodes / {sa_loads} loads",
              file=sys.stderr)
        failed = True
    print(f"\nencode-once: frontend {fe_encodes} vs standalone "
          f"{sa_encodes} one-hot encodes "
          f"({sa_encodes - fe_encodes} avoided); reference loads "
          f"{fe_loads} vs {sa_loads}")

    # -- session isolation: frontend session == standalone twin ---------
    for ours, theirs in zip(fe_reports, sa_reports, strict=True):
        assert_bit_identical(ours, theirs)
    print(f"OK: all {args.sessions} concurrent sessions bit-identical "
          f"to their standalone services")
    if not failed:
        print("OK: shared reference encoded exactly once")
    write_bench_json(
        args.json, bench="bench_frontend_concurrency",
        config={"sessions": args.sessions, "reads": args.reads,
                "read_length": args.read_length,
                "segments": args.segments, "threshold": args.threshold,
                "condition": args.condition, "engine": args.engine,
                "shards": args.shards, "micro_batch": args.micro_batch,
                "seed": args.seed, "smoke": args.smoke},
        timings={"frontend_setup_s": fe_setup, "frontend_stream_s": fe_s,
                 "standalone_setup_s": sa_setup,
                 "standalone_stream_s": sa_s},
        derived={"frontend_encodes": fe_encodes,
                 "standalone_encodes": sa_encodes,
                 "encodes_avoided": sa_encodes - fe_encodes,
                 "sessions_bit_identical": True,
                 "gate_passed": not failed},
    )
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
